/// End-to-end bounded streams: with Options::inbox_capacity /
/// output_capacity set, a fast producer must not balloon memory —
/// peak_live stays O(bound × entities), try_inject reports "full", and
/// suspended producers resume without deadlock, including when the slow
/// consumer runs nested data-parallel with-loops on the shared executor.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

/// `(x) -> (x)` box that burns ~\p spin_iters of CPU per record — the
/// slow consumer of a fast-producer/slow-consumer pipeline.
Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;  // unsigned: the sum may wrap
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

Options bounded(std::size_t inbox, std::size_t output, unsigned workers = 2) {
  Options o;
  o.workers = workers;
  o.inbox_capacity = inbox;
  o.output_capacity = output;
  return o;
}

}  // namespace

TEST(Backpressure, PeakLiveStaysWithinConfiguredBound) {
  constexpr std::size_t kBound = 8;
  constexpr int kRecords = 4000;
  // Output stays unbounded: this test injects everything before
  // collecting, and a bounded output buffer with no concurrent consumer
  // is a full pipe nobody reads — blocking inject would (correctly)
  // deadlock. Bounded-output flows are covered by the streaming tests.
  Network net(slow_box("slow", 500) >> slow_box("slow2", 4000),
              bounded(kBound, 0));
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(int_rec(i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  const auto stats = net.stats();
  // Entities hold at most inbox_capacity + quantum each (bounded
  // overshoot: a producer finishes the record it is emitting before it
  // suspends), the output buffer output_capacity more. Anything near
  // kRecords means backpressure never engaged.
  const std::int64_t ceiling = static_cast<std::int64_t>(
      stats.entity_count() * (kBound + Options{}.quantum));
  EXPECT_LE(stats.peak_live, ceiling)
      << "peak_live " << stats.peak_live << " exceeds O(bound × entities)";
  EXPECT_LT(stats.peak_live, kRecords / 4);
  EXPECT_GT(stats.suspensions, 0U) << "bounded run never suspended a producer";
}

TEST(Backpressure, UnboundedRunReportsFullBacklogForComparison) {
  // The legacy behaviour the bound replaces: everything injected sits in
  // the first inbox, so peak_live tracks the injected count. The box must
  // be slow enough that injection outruns it under every build flavour —
  // sanitizer instrumentation slows the inject path more than the spin
  // loop, and the batched runtime consumes faster than the scalar one did.
  constexpr int kRecords = 2000;
  Network net(slow_box("slow", 20000), bounded(0, 0));
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(int_rec(i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  const auto stats = net.stats();
  EXPECT_EQ(stats.suspensions, 0U);
  EXPECT_GT(stats.peak_live, static_cast<std::int64_t>(kRecords) / 2);
}

TEST(Backpressure, TryInjectReportsFullAndRecordSurvives) {
  // One worker and a very slow box: the entry inbox (capacity 2) must
  // fill while the box grinds, and try_inject must refuse without losing
  // the record.
  Network net(slow_box("slow", 200000), bounded(2, 0, 1));
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    Record r = int_rec(i);
    if (net.input().try_inject(r)) {
      ++accepted;
    } else {
      ++rejected;
      // The refused record is handed back intact and can be retried.
      EXPECT_EQ(value_as<int>(r.field("x")), i);
      net.input().inject(std::move(r));  // blocking path must still work
    }
  }
  EXPECT_GT(rejected, 0) << "bounded inbox never reported full";
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 64U);
  EXPECT_EQ(accepted + rejected, 64);
}

TEST(Backpressure, InjectAllDeliversEveryRecordUnderPressure) {
  constexpr int kRecords = 500;
  std::vector<Record> batch;
  batch.reserve(kRecords);
  for (int i = 0; i < kRecords; ++i) {
    batch.push_back(int_rec(i));
  }
  Network net(slow_box("slow", 5000), bounded(4, 0));
  net.input().inject_all(std::move(batch));
  EXPECT_EQ(net.output().collect().size(), static_cast<std::size_t>(kRecords));
}

TEST(Backpressure, SuspendedProducerResumesWithNestedWithLoops) {
  // The paper's deployment model under pressure: the slow box opens a
  // data-parallel with-loop on the *same* executor its suspended
  // producers wait to be re-queued into. A stall that blocked a pool
  // thread (instead of parking the entity) would deadlock here.
  auto heavy = box("heavy", "(x) -> (x)",
                   [](const BoxInput& in, BoxOutput& out) {
                     const int x = in.get<int>("x");
                     const auto arr = sac::With<int>()
                                          .gen({0}, {512},
                                               [x](const sac::Index& iv) {
                                                 return static_cast<int>(iv[0]) + x;
                                               })
                                          .genarray(sac::Shape{512}, 0);
                     out.out(1, make_value(x + static_cast<int>(arr.linear(511)) % 2));
                   });
  Network net(box("fanout", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    for (int k = 0; k < 4; ++k) {
                      out.out(1, in.field("x"));
                    }
                  }) >>
                  heavy,
              bounded(4, 0, 4));
  for (int i = 0; i < 300; ++i) {
    net.input().inject(int_rec(i));
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 1200U);
  EXPECT_GT(net.stats().suspensions, 0U);
}

TEST(Backpressure, StreamingConsumerDrainsBoundedOutput) {
  // Bounded output buffer with a concurrent consumer: the output entity
  // stalls when the client lags and resumes as the client pops — the
  // stream completes with every record delivered exactly once.
  constexpr int kRecords = 1000;
  Network net(slow_box("slow", 100), bounded(8, 8));
  std::atomic<int> seen{0};
  std::jthread consumer([&] {
    while (net.output().next().has_value()) {
      seen.fetch_add(1);
      if (seen.load() % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(int_rec(i));
  }
  net.input().close();
  consumer.join();
  EXPECT_EQ(seen.load(), kRecords);
}

TEST(Backpressure, BlockedInjectRethrowsWhenNetworkFails) {
  // A bounded pipeline whose consumer dies after an entity error never
  // releases entry credit: the blocked producer must rethrow the error,
  // not hang (fail() wakes the input-credit wait).
  auto bomb = box("bomb", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    const int x = in.get<int>("x");
                    if (x == 5) {
                      throw std::runtime_error("injected fault");
                    }
                    volatile unsigned sink = 0;
                    for (unsigned i = 0; i < 20000; ++i) {
                      sink = sink + i;
                    }
                    out.out(1, in.field("x"));
                  });
  Network net(bomb, bounded(2, 1, 1));
  std::jthread consumer([&] {
    // Dies on the rethrown error; afterwards nobody drains the output.
    EXPECT_THROW(
        while (net.output().next().has_value()) {}, std::runtime_error);
  });
  EXPECT_THROW(
      {
        for (int i = 0; i < 5000; ++i) {
          net.input().inject(int_rec(i));
        }
      },
      std::runtime_error);
}

TEST(Backpressure, DetRegionReleasesInOrderUnderPressure) {
  // A deterministic parallel region draining through a bounded pipe: the
  // collector must pause mid-group when downstream is full and resume
  // without reordering.
  auto ident = [](const std::string& name) {
    return box(name, "(x) -> (x)", [](const BoxInput& in, BoxOutput& out) {
      out.out(1, in.field("x"));
    });
  };
  Network net(parallel_det(ident("L"), ident("R")) >> slow_box("slow", 3000),
              bounded(4, 0));
  constexpr int kRecords = 400;
  for (int i = 0; i < kRecords; ++i) {
    net.input().inject(int_rec(i));
  }
  const auto out = net.output().collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(value_as<int>(out[static_cast<std::size_t>(i)].field("x")), i);
  }
}
