/// Randomized static-vs-dynamic equivalence for the shape-flow verifier
/// (verify.hpp): over generated topologies,
///
///  * the verifier's *error* verdict coincides with fail-fast inference —
///    `verify(net).has_errors()` iff `infer(net)` throws;
///  * every record the verifier calls routable is accepted at run time
///    (the network drains without a type error, producing at least one
///    output per injected record for the generated component set);
///  * no branch the verifier pronounced dead ever receives a record
///    (asserted through Options::trace against the diagnostic paths).
///
/// Generated boxes emit exactly their declared output variants, so runtime
/// record types equal the static lower bounds and the equivalence is exact.
/// Synchrocells and stars are exercised in the static half only: a sync
/// merge may carry labels above its static lower bound (the documented
/// reason dead-branch is a warning), and a star over emit-all boxes never
/// drains.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <random>
#include <regex>
#include <string>
#include <vector>

#include "snet/check.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/verify.hpp"

using namespace snet;

namespace {

const char* const kFields[] = {"f0", "f1", "f2"};
const char* const kTags[] = {"t0", "t1"};

struct Gen {
  std::mt19937 rng;
  int next_box = 0;

  explicit Gen(unsigned seed) : rng(seed) {}

  int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng); }
  bool chance(int percent) { return pick(100) < percent; }

  RecordType rand_type(bool nonempty) {
    RecordType v;
    for (const char* f : kFields) {
      if (chance(40)) {
        v.add(field_label(f));
      }
    }
    for (const char* t : kTags) {
      if (chance(25)) {
        v.add(tag_label(t));
      }
    }
    if (nonempty && v.empty()) {
      v.add(field_label(kFields[pick(3)]));
    }
    return v;
  }

  /// `(f0, <t0>)` in the variant's canonical label order — the same order
  /// the emitting box function binds its arguments in.
  static std::string sig_variant(const RecordType& v) {
    std::string out = "(";
    bool first = true;
    for (const Label l : v.labels()) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += label_display(l);
    }
    return out + ")";
  }

  /// `{f0, <t0>}` for patterns and filter specifiers.
  static std::string pattern_text(const RecordType& v) {
    std::string out = "{";
    bool first = true;
    for (const Label l : v.labels()) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += label_display(l);
    }
    return out + "}";
  }

  /// A box emitting exactly its declared output variants, one record per
  /// variant per input: the runtime realises the full static lower bound.
  Net rand_box() {
    const RecordType in = rand_type(true);
    std::vector<RecordType> outs;
    const int n = 1 + pick(2);
    for (int i = 0; i < n; ++i) {
      const RecordType o = rand_type(true);
      if (std::find(outs.begin(), outs.end(), o) == outs.end()) {
        outs.push_back(o);
      }
    }
    std::string sig = sig_variant(in) + " ->";
    for (std::size_t i = 0; i < outs.size(); ++i) {
      sig += (i == 0 ? " " : " | ") + sig_variant(outs[i]);
    }
    const BoxFn fn = [outs](const BoxInput&, BoxOutput& out) {
      for (std::size_t j = 0; j < outs.size(); ++j) {
        std::vector<BoxArg> args;
        for (const Label l : outs[j].labels()) {
          if (l.kind == LabelKind::Tag) {
            args.push_back(BoxArg::from_int(1));
          } else {
            args.push_back(BoxArg::from(make_value(1)));
          }
        }
        out.emit(static_cast<int>(j) + 1, std::move(args));
      }
    };
    return box("b" + std::to_string(next_box++), sig, fn);
  }

  Net rand_filter() {
    const RecordType pat = rand_type(false);
    std::string spec = pattern_text(pat) + " -> ";
    const int n = 1 + pick(2);
    for (int i = 0; i < n; ++i) {
      if (i > 0) {
        spec += "; ";
      }
      RecordType out = pat;
      // Sometimes mint a tag that is not in the pattern.
      const Label mint = tag_label(kTags[pick(2)]);
      if (chance(50) && !pat.contains(mint)) {
        std::string text = pattern_text(pat);
        text.pop_back();  // strip '}'
        if (!pat.empty()) {
          text += ", ";
        }
        spec += text + label_display(mint) + "=1}";
      } else {
        spec += pattern_text(out);
      }
    }
    return filter(spec);
  }

  /// Acyclic topologies for the dynamic half: every record tree is finite.
  Net rand_dag(int depth) {
    if (depth == 0 || chance(35)) {
      return chance(60) ? rand_box() : rand_filter();
    }
    switch (pick(5)) {
      case 0:
        return rand_dag(depth - 1) >> rand_dag(depth - 1);
      case 1:
        return parallel(rand_dag(depth - 1), rand_dag(depth - 1));
      case 2:
        // A box upstream constrains the parallel's reachable set to the
        // box's declared outputs — the shape that produces dead branches.
        return rand_box() >> parallel(rand_dag(depth - 1), rand_dag(depth - 1));
      case 3:
        return split(rand_dag(depth - 1), kTags[pick(2)]);
      default:
        return rand_box() >> rand_dag(depth - 1);
    }
  }

  /// Adds the cyclic/stateful combinators for the static-only half.
  Net rand_any(int depth) {
    if (depth == 0) {
      return rand_dag(0);
    }
    switch (pick(6)) {
      case 0:
        return star(rand_any(depth - 1), pattern_text(rand_type(true)));
      case 1:
        return sync({pattern_text(rand_type(true)),
                     pattern_text(rand_type(true))});
      default:
        return rand_dag(depth);
    }
  }
};

Record record_of(const RecordType& v, int salt) {
  Record r;
  for (const Label l : v.labels()) {
    if (l.kind == LabelKind::Tag) {
      r.set_tag(l, salt % 3);
    } else {
      r.set_field(l, make_value(salt));
    }
  }
  return r;
}

/// Translates a diagnostic path to a regex over runtime entity names: the
/// static star position "rep*" covers every unfolded "repN", the static
/// split position "[*]" every demand-created "[value]", and a dead branch
/// covers every entity instantiated under its subtree prefix.
std::regex path_regex(const std::string& path) {
  std::string rx;
  for (const char c : path) {
    if (std::strchr("\\^$.|?*+()[]{}", c) != nullptr) {
      rx += '\\';
    }
    rx += c;
  }
  auto replace_all = [&rx](const std::string& from, const std::string& to) {
    for (std::size_t at = rx.find(from); at != std::string::npos;
         at = rx.find(from, at + to.size())) {
      rx.replace(at, from.size(), to);
    }
  };
  replace_all("rep\\*", "rep[0-9]+");
  replace_all("split\\[\\*\\]", "split\\[[^\\]]*\\]");
  return std::regex("^" + rx + "([/\\[].*)?$");
}

struct DynamicRun {
  std::size_t injected = 0;
  std::size_t produced = 0;
  std::vector<std::string> dead_hits;  // entities under a dead-branch path
};

DynamicRun run_traced(const Net& net, const VerifyReport& report,
                      int per_variant) {
  std::vector<std::pair<std::string, std::regex>> dead;
  for (const auto& d : report.diagnostics) {
    if (d.code == LintCode::DeadBranch) {
      dead.emplace_back(d.path, path_regex(d.path));
    }
  }
  DynamicRun run;
  std::mutex mu;
  Options opts;
  opts.workers = 2;
  opts.verify = VerifyMode::Off;  // the report is computed by the caller
  opts.trace = [&](const std::string& entity, const Record&) {
    for (const auto& [path, rx] : dead) {
      if (std::regex_match(entity, rx)) {
        const std::lock_guard<std::mutex> lock(mu);
        run.dead_hits.push_back(entity + " (dead: " + path + ")");
      }
    }
  };
  Network network(net, opts);
  const MultiType seed = required_input(net);
  std::vector<Record> batch;
  for (const auto& v : seed.variants()) {
    for (int i = 0; i < per_variant; ++i) {
      batch.push_back(record_of(v, i));
    }
  }
  run.injected = batch.size();
  network.input().inject_all(std::move(batch));
  network.input().close();
  run.produced = network.output().collect().size();
  network.wait();
  return run;
}

}  // namespace

TEST(VerifyFuzz, ErrorVerdictMatchesInference) {
  // Over the full combinator set (stars, syncs, splits included): the
  // verifier reports at least one *error* exactly when fail-fast inference
  // rejects the topology. Warnings never flip the verdict.
  int rejected = 0;
  for (unsigned trial = 0; trial < 300; ++trial) {
    Gen g(trial);
    const Net net = g.rand_any(3);
    const VerifyReport report = verify(net);
    bool threw = false;
    try {
      infer(net);
    } catch (const TypeCheckError&) {
      threw = true;
    }
    EXPECT_EQ(report.has_errors(), threw)
        << "trial " << trial << ": " << describe(net) << "\n"
        << report.to_string();
    rejected += threw ? 1 : 0;
  }
  // The generator must exercise both verdicts for the assertion to mean
  // anything.
  EXPECT_GT(rejected, 20);
  EXPECT_LT(rejected, 280);
}

TEST(VerifyFuzz, RoutableRecordsAcceptedDeadBranchesSilent) {
  int ran = 0;
  int with_dead = 0;
  for (unsigned trial = 0; ran < 48 && trial < 600; ++trial) {
    Gen g(1000 + trial);
    const Net net = g.rand_dag(3);
    const VerifyReport report = verify(net);
    if (report.has_errors()) {
      // Covered by ErrorVerdictMatchesInference; nothing to run.
      EXPECT_THROW(infer(net), TypeCheckError) << describe(net);
      continue;
    }
    ++ran;
    with_dead += report.count(LintCode::DeadBranch) > 0 ? 1 : 0;
    const DynamicRun run = run_traced(net, report, 6);
    // Acceptance: every injected record drains (generated boxes and
    // filters each emit >= 1 record per input, so a lost record means a
    // routing failure the verifier did not predict).
    EXPECT_GE(run.produced, run.injected) << describe(net);
    // Silence: a verifier-dead branch never sees a record.
    EXPECT_TRUE(run.dead_hits.empty())
        << describe(net) << "\n"
        << report.to_string() << "delivered: " << run.dead_hits.front();
  }
  EXPECT_GE(ran, 32) << "generator produced too few constructible nets";
  EXPECT_GE(with_dead, 3)
      << "generator produced too few live dead-branch witnesses";
}

TEST(VerifyFuzz, DeadBranchFixtureStaysSilentUnderLoad) {
  // The deterministic anchor (the negative CI fixture's topology, with
  // emitting boxes): every record classify emits is {x, a, b}, wide wins
  // every time, narrow must never be traced.
  const BoxFn emit_xab = [](const BoxInput&, BoxOutput& out) {
    out.out(1, make_value(1), make_value(2), make_value(3));
  };
  const BoxFn emit_x = [](const BoxInput&, BoxOutput& out) {
    out.out(1, make_value(1));
  };
  const Net net = box("classify", "(x) -> (x, a, b)", emit_xab) >>
                  parallel(box("wide", "(x, a, b) -> (x)", emit_x),
                           box("narrow", "(x, a) -> (x)", emit_x));
  const VerifyReport report = verify(net);
  ASSERT_EQ(report.count(LintCode::DeadBranch), 1U) << report.to_string();
  const DynamicRun run = run_traced(net, report, 64);
  EXPECT_EQ(run.injected, 64U);
  EXPECT_EQ(run.produced, 64U);
  EXPECT_TRUE(run.dead_hits.empty()) << run.dead_hits.front();
}
