/// Graphviz export of topologies and run statistics.

#include <gtest/gtest.h>

#include "snet/dot.hpp"
#include "snet/network.hpp"
#include "sudoku/nets.hpp"

using namespace snet;

namespace {
Net ident(const std::string& name) {
  return box(name, "(x) -> (x)",
             [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
}
}  // namespace

TEST(Dot, TopologyContainsAllComponents) {
  auto dec = box("dec", "(x) -> (x) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  const Net n = ident("pre") >> filter("{x} -> {x, <k>=0}") >>
                parallel(split(star(dec, "{<done>}"), "k"), ident("alt"));
  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("digraph snet"), std::string::npos);
  EXPECT_NE(dot.find("box pre"), std::string::npos);
  EXPECT_NE(dot.find("box dec"), std::string::npos);
  EXPECT_NE(dot.find("** {<done>}"), std::string::npos);
  EXPECT_NE(dot.find("!! <k>"), std::string::npos);
  EXPECT_NE(dot.find("||"), std::string::npos);
  EXPECT_NE(dot.find("__in"), std::string::npos);
  EXPECT_NE(dot.find("__out"), std::string::npos);
}

TEST(Dot, SignaturesAreEscaped) {
  const std::string dot = to_dot(ident("a"));
  // Quotes inside labels would break dot syntax; sanity check balance.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

TEST(Dot, Fig2TopologyRenders) {
  const std::string dot = to_dot(sudoku::fig2_net());
  EXPECT_NE(dot.find("box computeOpts"), std::string::npos);
  EXPECT_NE(dot.find("box solveOneLevel"), std::string::npos);
  EXPECT_NE(dot.find("<k>=1"), std::string::npos);
}

TEST(Dot, RunStatsRenderEntityCounters) {
  Network net(ident("id") >> ident("id2"));
  Record r;
  r.set_field("x", make_value(1));
  net.input().inject(std::move(r));
  net.output().collect();
  const std::string dot = to_dot(net.stats());
  EXPECT_NE(dot.find("digraph snet_run"), std::string::npos);
  EXPECT_NE(dot.find("box:id"), std::string::npos);
  EXPECT_NE(dot.find("in=1 out=1"), std::string::npos);
  EXPECT_NE(dot.find("injected=1 produced=1"), std::string::npos);
}

TEST(Dot, SyncRenders) {
  const std::string dot = to_dot(sync({"{a}", "{b}"}));
  EXPECT_NE(dot.find("[|{a}, {b}|]"), std::string::npos);
}
