/// Tag expressions and their textual form (filters' arithmetic on tag
/// values, guard predicates).

#include <gtest/gtest.h>

#include "snet/parse.hpp"
#include "snet/tagexpr.hpp"

using namespace snet;

namespace {
Record tags(std::initializer_list<std::pair<std::string_view, std::int64_t>> ts) {
  Record r;
  for (const auto& [n, v] : ts) {
    r.set_tag(tag_label(n), v);
  }
  return r;
}

TagExpr parse_expr(const std::string& s) {
  text::Cursor cur(text::tokenize(s));
  TagExpr e = parse::tag_expression(cur);
  EXPECT_TRUE(cur.done()) << "trailing input in: " << s;
  return e;
}
}  // namespace

TEST(TagExpr, LiteralsAndTagRefs) {
  EXPECT_EQ(TagExpr::lit(42).eval(tags({})), 42);
  EXPECT_EQ(TagExpr::tag("k").eval(tags({{"k", 7}})), 7);
  EXPECT_THROW(TagExpr::tag("k").eval(tags({})), TagExprError);
  EXPECT_THROW(TagExpr::tag(field_label("k")), TagExprError);
}

TEST(TagExpr, PaperThrottleExpression) {
  // {<k>} -> {<k>=<k>%4}: "we reduce all potential values for <k> to the
  // range 0 to 3".
  const TagExpr e = TagExpr::tag("k") % TagExpr::lit(4);
  for (std::int64_t k = 0; k < 12; ++k) {
    const auto v = e.eval(tags({{"k", k}}));
    EXPECT_EQ(v, k % 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
  }
}

TEST(TagExpr, PaperExitGuard) {
  // {<level>} | <level> > 40
  const TagExpr g = TagExpr::tag("level") > TagExpr::lit(40);
  EXPECT_FALSE(g.eval_bool(tags({{"level", 40}})));
  EXPECT_TRUE(g.eval_bool(tags({{"level", 41}})));
}

TEST(TagExpr, Arithmetic) {
  const auto k = TagExpr::tag("k");
  EXPECT_EQ((k + TagExpr::lit(1)).eval(tags({{"k", 2}})), 3);
  EXPECT_EQ((k - TagExpr::lit(5)).eval(tags({{"k", 2}})), -3);
  EXPECT_EQ((k * k).eval(tags({{"k", 6}})), 36);
  EXPECT_EQ((k / TagExpr::lit(2)).eval(tags({{"k", 7}})), 3);
  EXPECT_EQ((-k).eval(tags({{"k", 4}})), -4);
}

TEST(TagExpr, DivisionAndModuloByZeroThrow) {
  const auto k = TagExpr::tag("k");
  EXPECT_THROW((k / TagExpr::lit(0)).eval(tags({{"k", 1}})), TagExprError);
  EXPECT_THROW((k % TagExpr::lit(0)).eval(tags({{"k", 1}})), TagExprError);
}

TEST(TagExpr, ComparisonsAndLogic) {
  const auto r = tags({{"a", 3}, {"b", 5}});
  const auto a = TagExpr::tag("a");
  const auto b = TagExpr::tag("b");
  EXPECT_TRUE((a < b).eval_bool(r));
  EXPECT_TRUE((a <= TagExpr::lit(3)).eval_bool(r));
  EXPECT_FALSE((a == b).eval_bool(r));
  EXPECT_TRUE((a != b).eval_bool(r));
  EXPECT_TRUE((a >= TagExpr::lit(3) && b > TagExpr::lit(4)).eval_bool(r));
  EXPECT_TRUE((a > b || b == TagExpr::lit(5)).eval_bool(r));
  EXPECT_TRUE((!(a > b)).eval_bool(r));
}

TEST(TagExpr, ShortCircuitAvoidsMissingTagError) {
  // (0 && <missing>) must not evaluate <missing>.
  const auto e = TagExpr::lit(0) && TagExpr::tag("missing");
  EXPECT_FALSE(e.eval_bool(tags({})));
  const auto o = TagExpr::lit(1) || TagExpr::tag("missing");
  EXPECT_TRUE(o.eval_bool(tags({})));
}

TEST(TagExpr, ReferencedTags) {
  const auto e = TagExpr::tag("a") + TagExpr::tag("b") * TagExpr::tag("a");
  const auto refs = e.referenced_tags();
  EXPECT_EQ(refs.size(), 3U);  // with duplicates
}

TEST(TagExpr, ToStringRendersStructure) {
  const auto e = TagExpr::tag("k") % TagExpr::lit(4);
  EXPECT_EQ(e.to_string(), "(<k> % 4)");
}

// ---- textual form -------------------------------------------------------

TEST(TagExprParse, Precedence) {
  EXPECT_EQ(parse_expr("1 + 2 * 3").eval(tags({})), 7);
  EXPECT_EQ(parse_expr("(1 + 2) * 3").eval(tags({})), 9);
  EXPECT_EQ(parse_expr("10 - 3 - 2").eval(tags({})), 5) << "left assoc";
  EXPECT_EQ(parse_expr("12 / 2 / 3").eval(tags({})), 2);
}

TEST(TagExprParse, TagsVersusComparisons) {
  // `<level> > 40`: tag token then greater-than.
  const auto e = parse_expr("<level> > 40");
  EXPECT_TRUE(e.eval_bool(tags({{"level", 50}})));
  // `40 < <level>` the other way around.
  const auto f = parse_expr("40 < <level>");
  EXPECT_TRUE(f.eval_bool(tags({{"level", 50}})));
  EXPECT_FALSE(f.eval_bool(tags({{"level", 30}})));
}

TEST(TagExprParse, UnaryAndLogic) {
  EXPECT_EQ(parse_expr("-3 + 5").eval(tags({})), 2);
  EXPECT_TRUE(parse_expr("!0").eval_bool(tags({})));
  EXPECT_TRUE(parse_expr("<a> == 1 && <b> == 2")
                  .eval_bool(tags({{"a", 1}, {"b", 2}})));
  EXPECT_TRUE(parse_expr("<a> == 9 || <b> == 2")
                  .eval_bool(tags({{"a", 1}, {"b", 2}})));
}

TEST(TagExprParse, Errors) {
  EXPECT_THROW(parse_expr("1 +"), text::ParseError);
  EXPECT_THROW(parse_expr(")"), text::ParseError);
  EXPECT_THROW(parse_expr("foo"), text::ParseError) << "bare identifiers are not tags";
}
