/// Failure injection and lifecycle robustness for the S-Net runtime: error
/// propagation under load, teardown with in-flight records, concurrent
/// producers/consumers, runtime type errors.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

Record rec(int x, std::initializer_list<std::pair<std::string_view, std::int64_t>>
                      tags = {}) {
  Record r;
  r.set_field("x", make_value(x));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)",
             [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
}

Options workers(unsigned w) {
  Options o;
  o.workers = w;
  return o;
}

}  // namespace

TEST(Robust, BoxThrowingUnderLoadFailsFastWithoutHanging) {
  auto flaky = box("flaky", "(x) -> (x)",
                   [](const BoxInput& in, BoxOutput& out) {
                     const int x = in.get<int>("x");
                     if (x == 500) {
                       throw std::runtime_error("injected fault");
                     }
                     out.out(1, in.field("x"));
                   });
  Network net(flaky >> ident("sink"), workers(4));
  for (int i = 0; i < 1000; ++i) {
    net.input().inject(rec(i));
  }
  EXPECT_THROW(net.output().collect(), std::runtime_error);
}

TEST(Robust, FirstErrorWinsWhenManyBoxesThrow) {
  auto bomb = box("bomb", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput&) {
                    throw std::runtime_error("fault " +
                                             std::to_string(in.get<int>("x")));
                  });
  Network net(bomb, workers(4));
  for (int i = 0; i < 50; ++i) {
    net.input().inject(rec(i));
  }
  try {
    net.output().collect();
    FAIL() << "expected an error";
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(std::string(e.what()).rfind("fault ", 0) == 0);
  }
}

TEST(Robust, DestructionWithInFlightRecordsIsSafe) {
  // Drop the network without draining: workers must stop cleanly.
  auto slow = box("slow", "(x) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) {
                    std::this_thread::sleep_for(std::chrono::microseconds(100));
                    out.out(1, in.field("x"));
                  });
  for (int round = 0; round < 5; ++round) {
    Network net(slow >> slow >> slow, workers(2));
    for (int i = 0; i < 100; ++i) {
      net.input().inject(rec(i));
    }
    // No close, no collect: destructor runs with records mid-network.
  }
  SUCCEED();
}

TEST(Robust, ValueTypeMismatchSurfacesAsError) {
  auto reader = box("reader", "(x) -> (x)",
                    [](const BoxInput& in, BoxOutput& out) {
                      // Field holds int; asking for a string must throw.
                      (void)in.get<std::string>("x");
                      out.out(1, in.field("x"));
                    });
  Network net(reader);
  net.input().inject(rec(7));
  EXPECT_THROW(net.output().collect(), ValueError);
}

TEST(Robust, FilterGuardRuntimeErrorFailsNetwork) {
  // Guard divides by a tag that is zero for some record.
  const FilterSpec spec(
      Pattern(RecordType::of({"x"}, {"d"}),
              TagExpr::lit(100) / TagExpr::tag("d") > TagExpr::lit(0)),
      {FilterSpec::Output{{FilterSpec::Item{FilterSpec::Item::Kind::CopyField,
                                            field_label("x"), {}, {}}}}});
  Network net(filter(spec));
  net.input().inject(rec(1, {{"d", 5}}));
  net.input().inject(rec(2, {{"d", 0}}));  // division by zero in the guard
  EXPECT_THROW(net.output().collect(), TagExprError);
}

TEST(Robust, ConcurrentInjectionFromManyThreads) {
  Network net(ident("id"), workers(2));
  constexpr int kThreads = 4;
  constexpr int kEach = 250;
  {
    std::vector<std::jthread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&net, t] {
        for (int i = 0; i < kEach; ++i) {
          net.input().inject(rec(t * kEach + i));
        }
      });
    }
  }
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(Robust, StreamingConsumerOverlapsProducer) {
  // Consume outputs with output().next() while the producer is still
  // injecting — the network is a stream transformer, not batch-only.
  Network net(ident("id"), workers(2));
  std::atomic<int> seen{0};
  std::jthread consumer([&] {
    while (net.output().next().has_value()) {
      seen.fetch_add(1);
    }
  });
  for (int i = 0; i < 500; ++i) {
    net.input().inject(rec(i));
  }
  net.input().close();
  consumer.join();
  EXPECT_EQ(seen.load(), 500);
}

TEST(Robust, RecordsDyingSilentlyStillQuiesce) {
  // A box that consumes without emitting must not wedge quiescence.
  auto sink = box("sink", "(x) -> (x)", [](const BoxInput&, BoxOutput&) {});
  Network net(sink, workers(2));
  for (int i = 0; i < 100; ++i) {
    net.input().inject(rec(i));
  }
  const auto out = net.output().collect();
  EXPECT_TRUE(out.empty());
}

TEST(Robust, SplitHandlesExtremeTagValues) {
  Network net(split(ident("w"), "k"), workers(2));
  net.input().inject(rec(1, {{"k", std::numeric_limits<std::int64_t>::max()}}));
  net.input().inject(rec(2, {{"k", std::numeric_limits<std::int64_t>::min()}}));
  net.input().inject(rec(3, {{"k", -7}}));
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 3U);
  EXPECT_EQ(net.stats().count_containing("box:w"), 3U);
}

TEST(Robust, ManyNetworksSequentially) {
  // Instantiation/teardown churn: no leaked workers or state.
  for (int i = 0; i < 50; ++i) {
    Network net(ident("id") >> ident("id2"), workers(1));
    net.input().inject(rec(i));
    const auto out = net.output().collect();
    ASSERT_EQ(out.size(), 1U);
  }
  SUCCEED();
}

TEST(Robust, TwoNetworksConcurrently) {
  Network a(ident("a"), workers(2));
  Network b(ident("b"), workers(2));
  for (int i = 0; i < 200; ++i) {
    a.input().inject(rec(i));
    b.input().inject(rec(-i));
  }
  EXPECT_EQ(a.output().collect().size(), 200U);
  EXPECT_EQ(b.output().collect().size(), 200U);
}

TEST(Robust, WaitThenCollectIsIdempotent) {
  Network net(ident("id"));
  net.input().inject(rec(1));
  net.input().close();
  net.wait();
  net.wait();  // already quiescent
  const auto out = net.output().collect();
  EXPECT_EQ(out.size(), 1U);
  EXPECT_TRUE(net.output().collect().empty());
}

TEST(Robust, ErrorStateIsSticky) {
  auto bomb = box("bomb", "(x) -> (x)",
                  [](const BoxInput&, BoxOutput&) { throw std::logic_error("boom"); });
  Network net(bomb);
  net.input().inject(rec(1));
  EXPECT_THROW(net.output().collect(), std::logic_error);
  EXPECT_THROW(net.wait(), std::logic_error);
  EXPECT_THROW(net.output().next(), std::logic_error);
}

TEST(Robust, QuantumFairnessUnderSingleWorker) {
  // One worker, two busy boxes: the quantum bound must interleave them
  // (no starvation), observable through completion of both streams.
  auto l = ident("L");
  auto r = ident("R");
  Network net(parallel(l, r), workers(1));
  for (int i = 0; i < 1000; ++i) {
    net.input().inject(rec(i));
  }
  EXPECT_EQ(net.output().collect().size(), 1000U);
}
