/// E7 — §1/§3 scalability motivation: "as sudokus can be played on any
/// board of size n² × n², parallelisation becomes essential for bigger
/// puzzles."
///
/// Sweeps board size (4×4, 9×9, 16×16) and clue density (search-tree
/// breadth) across the sequential solver and the three networks. Puzzles
/// come from the reproducible generator.

#include <benchmark/benchmark.h>

#include "sudoku/generator.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {

BoardArray puzzle_for(int n, int clues, std::uint64_t seed) {
  // ensure_unique keeps benches comparable (exactly one solution);
  // the 16x16 generator skips the expensive uniqueness search.
  return generate(GenOptions{
      .n = n, .clues = clues, .seed = seed, .ensure_unique = n <= 3});
}

void BM_SeqBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int clues = static_cast<int>(state.range(1));
  const auto puzzle = puzzle_for(n, clues, 77);
  SolveStats last;
  for (auto _ : state) {
    SolveStats st;
    auto res = solve_board(puzzle, Pick::MinOptions, &st);
    benchmark::DoNotOptimize(res);
    last = st;
  }
  state.counters["N"] = n * n;
  state.counters["clues"] = clues;
  state.counters["nodes"] = static_cast<double>(last.nodes);
}
BENCHMARK(BM_SeqBySize)
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Args({4, 200})
    ->Unit(benchmark::kMillisecond);

void BM_NetBySize(benchmark::State& state, const std::string& which) {
  const int n = static_cast<int>(state.range(0));
  const int clues = static_cast<int>(state.range(1));
  const auto puzzle = puzzle_for(n, clues, 77);
  const int cells = n * n * n * n;
  const auto topo = [&] {
    if (which == "fig1") {
      return fig1_net();
    }
    if (which == "fig2") {
      return fig2_net();
    }
    // Scale the Fig. 3 knobs with the board: T at ~half the cells.
    return fig3_net(Fig3Params{.throttle = 4, .level_threshold = cells / 2});
  }();
  std::size_t solutions = 0;
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = 2;
    snet::Network net(topo, std::move(opts));
    net.inject(board_record(puzzle));
    const auto records = net.collect();
    solutions = solutions_in(records).size();
  }
  state.counters["N"] = n * n;
  state.counters["clues"] = clues;
  state.counters["solutions"] = static_cast<double>(solutions);
}

}  // namespace

BENCHMARK_CAPTURE(BM_NetBySize, fig1, std::string("fig1"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetBySize, fig2, std::string("fig2"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetBySize, fig3, std::string("fig3"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Args({4, 200})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
