/// E7 — §1/§3 scalability motivation: "as sudokus can be played on any
/// board of size n² × n², parallelisation becomes essential for bigger
/// puzzles."
///
/// Sweeps board size (4×4, 9×9, 16×16) and clue density (search-tree
/// breadth) across the sequential solver and the three networks. Puzzles
/// come from the reproducible generator.

#include <chrono>
#include <cstdio>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "runtime/executor.hpp"
#include "sudoku/generator.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {

BoardArray puzzle_for(int n, int clues, std::uint64_t seed) {
  // ensure_unique keeps benches comparable (exactly one solution);
  // the 16x16 generator skips the expensive uniqueness search.
  return generate(GenOptions{
      .n = n, .clues = clues, .seed = seed, .ensure_unique = n <= 3});
}

void BM_SeqBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int clues = static_cast<int>(state.range(1));
  const auto puzzle = puzzle_for(n, clues, 77);
  SolveStats last;
  for (auto _ : state) {
    SolveStats st;
    auto res = solve_board(puzzle, Pick::MinOptions, &st);
    benchmark::DoNotOptimize(res);
    last = st;
  }
  state.counters["N"] = n * n;
  state.counters["clues"] = clues;
  state.counters["nodes"] = static_cast<double>(last.nodes);
}
BENCHMARK(BM_SeqBySize)
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Args({4, 200})
    ->Unit(benchmark::kMillisecond);

void BM_NetBySize(benchmark::State& state, const std::string& which) {
  const int n = static_cast<int>(state.range(0));
  const int clues = static_cast<int>(state.range(1));
  const auto puzzle = puzzle_for(n, clues, 77);
  const int cells = n * n * n * n;
  const auto topo = [&] {
    if (which == "fig1") {
      return fig1_net();
    }
    if (which == "fig2") {
      return fig2_net();
    }
    // Scale the Fig. 3 knobs with the board: T at ~half the cells.
    return fig3_net(Fig3Params{.throttle = 4, .level_threshold = cells / 2});
  }();
  std::size_t solutions = 0;
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = 2;
    snet::Network net(topo, std::move(opts));
    net.input().inject(board_record(puzzle));
    const auto records = net.output().collect();
    solutions = solutions_in(records).size();
  }
  state.counters["N"] = n * n;
  state.counters["clues"] = clues;
  state.counters["solutions"] = static_cast<double>(solutions);
}

}  // namespace

BENCHMARK_CAPTURE(BM_NetBySize, fig1, std::string("fig1"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetBySize, fig2, std::string("fig2"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetBySize, fig3, std::string("fig3"))
    ->Args({2, 8})
    ->Args({3, 60})
    ->Args({3, 40})
    ->Args({3, 28})
    ->Args({4, 200})
    ->Unit(benchmark::kMillisecond);

namespace {

/// Machine-readable scaling record (BENCH_scaling.json): records/sec of
/// the Fig. 2 network on a 9x9 board across worker caps, with scheduler
/// quanta and executor steal counts, so future PRs can track the perf
/// trajectory without scraping the human-oriented gbench output.
void emit_scaling_json() {
  const auto puzzle = puzzle_for(3, 40, 77);
  const auto executor_threads =
      static_cast<std::int64_t>(snetsac::runtime::Executor::global().size());
  std::vector<benchjson::Row> rows;
  for (const unsigned workers : {1U, 2U, 4U, 8U}) {
    double seconds = 0;
    std::uint64_t records = 0;
    std::uint64_t quanta = 0;
    std::uint64_t steals = 0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      snet::Options opts;
      opts.workers = workers;
      snet::Network net(fig2_net(), std::move(opts));
      const std::uint64_t steals_before = net.scheduler().steals();
      const auto t0 = std::chrono::steady_clock::now();
      net.input().inject(board_record(puzzle));
      net.output().collect();
      const auto t1 = std::chrono::steady_clock::now();
      seconds += std::chrono::duration<double>(t1 - t0).count();
      const auto stats = net.stats();
      for (const auto& e : stats.entities) {
        records += e.records_in;
      }
      quanta += net.scheduler().quanta_executed();
      steals += net.scheduler().steals() - steals_before;
    }
    const double rps = static_cast<double>(records) / seconds;
    std::printf("scaling fig2 workers=%u %.3fs  %.0f records/sec  quanta=%llu steals=%llu\n",
                workers, seconds, rps, static_cast<unsigned long long>(quanta),
                static_cast<unsigned long long>(steals));
    benchjson::Row row;
    row.set("bench", std::string("fig2_9x9_c40"))
        .set("threads", static_cast<std::int64_t>(workers))
        .set("executor_threads", executor_threads)
        .set("reps", static_cast<std::int64_t>(kReps))
        .set("seconds", seconds)
        .set("records", static_cast<std::int64_t>(records))
        .set("records_per_sec", rps)
        .set("quanta", static_cast<std::int64_t>(quanta))
        .set("steals", static_cast<std::int64_t>(steals));
    rows.push_back(std::move(row));
  }
  benchjson::write("scaling", rows);
  std::printf("wrote BENCH_scaling.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Skip the JSON sweep when the caller narrowed the run (filter/list):
  // a quick one-benchmark invocation must not pay for 12 network solves
  // or clobber a previous BENCH_scaling.json.
  bool narrowed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark_filter", 0) == 0 ||
        arg.rfind("--benchmark_list_tests", 0) == 0) {
      narrowed = true;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!narrowed) {
    emit_scaling_json();
  }
  return 0;
}
