/// E8 (continued) — design-choice ablations beyond the Fig. 3 knobs:
///
///  * deterministic vs non-deterministic variants of the Fig. 2 network
///    (what does restoring stream order cost?),
///  * the constraint-propagation extension (how much coordination traffic
///    does per-level deduction remove?),
///  * findFirst vs findMinTrues inside the network boxes (the paper's own
///    Section 3 design change, measured at the coordination level via
///    records processed).

#include <benchmark/benchmark.h>

#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"

using namespace sudoku;

namespace {

void run_net(benchmark::State& state, const snet::Net& topo,
             const std::string& puzzle_name) {
  const auto puzzle = corpus_board(puzzle_name);
  std::uint64_t box_records = 0;
  std::size_t entities = 0;
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = 2;
    snet::Network net(topo, std::move(opts));
    net.input().inject(board_record(puzzle));
    const auto records = net.output().collect();
    if (solutions_in(records).empty()) {
      state.SkipWithError("network failed to solve");
      return;
    }
    const auto stats = net.stats();
    box_records = stats.records_in_containing("box:solveOneLevel");
    entities = stats.entity_count();
  }
  state.counters["solveOneLevel_records"] = static_cast<double>(box_records);
  state.counters["entities"] = static_cast<double>(entities);
}

snet::Net fig2_det() {
  using namespace snet;
  return compute_opts_box() >> filter("{} -> {<k>=1}") >>
         star_det(split_det(solve_one_level_k_box(), "k"), "{<done>}");
}

void BM_Fig2Nondet(benchmark::State& state, const std::string& name) {
  run_net(state, fig2_net(), name);
}
void BM_Fig2Det(benchmark::State& state, const std::string& name) {
  run_net(state, fig2_det(), name);
}
void BM_Fig2Propagated(benchmark::State& state, const std::string& name) {
  run_net(state, fig2_propagated_net(), name);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig2Nondet, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2Det, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2Propagated, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2Nondet, hard, std::string("hard"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2Det, hard, std::string("hard"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2Propagated, hard, std::string("hard"))->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
