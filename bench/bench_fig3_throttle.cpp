/// E5 + E8 — Fig. 3: throttled unfolding
///   computeOpts .. [{}->{<k>=1}]
///               .. (([{<k>}->{<k>=<k>%m}] .. (solveOneLevel !! <k>))
///                   ** {<level>} if <level> > T) .. solve
///
/// The paper introduces two knobs: the modulo throttle m ("implicitly
/// limits the parallel unfolding to a maximum of 4 instances" for m = 4)
/// and the level threshold T bounding pipeline depth, after which the
/// sequential solve box finishes the boards. This harness sweeps both —
/// the ablation DESIGN.md calls out — and reports the observed widths,
/// stage counts and exit-record counts.

#include <map>

#include <benchmark/benchmark.h>

#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"

using namespace sudoku;

namespace {

void BM_Fig3(benchmark::State& state, const std::string& name, int throttle,
             int threshold) {
  const auto puzzle = corpus_board(name);
  std::size_t instances = 0;
  std::size_t stages = 0;
  std::size_t max_width = 0;
  std::size_t exits = 0;
  std::size_t solutions = 0;
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = 2;
    snet::Network net(
        fig3_net(Fig3Params{.throttle = throttle, .level_threshold = threshold}),
        std::move(opts));
    net.input().inject(board_record(puzzle));
    const auto records = net.output().collect();
    exits = records.size();
    solutions = solutions_in(records).size();
    const auto stats = net.stats();
    instances = stats.count_containing("box:solveOneLevel");
    stages = stats.count_containing("/stage");
    std::map<std::string, std::size_t> per_stage;
    for (const auto& e : stats.entities) {
      if (e.name.find("box:solveOneLevel") == std::string::npos) {
        continue;
      }
      per_stage[e.name.substr(0, e.name.find("/split"))] += 1;
    }
    max_width = 0;
    for (const auto& [k, v] : per_stage) {
      max_width = std::max(max_width, v);
    }
  }
  state.counters["throttle_m"] = throttle;
  state.counters["level_T"] = threshold;
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["stages"] = static_cast<double>(stages);
  state.counters["max_split_width"] = static_cast<double>(max_width);
  state.counters["exit_records"] = static_cast<double>(exits);
  state.counters["solutions"] = static_cast<double>(solutions);
}

}  // namespace

// Throttle sweep (paper's m = 4 plus neighbours; m = 9 == no throttling).
BENCHMARK_CAPTURE(BM_Fig3, medium_m1_T40, std::string("medium"), 1, 40)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m2_T40, std::string("medium"), 2, 40)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m4_T40, std::string("medium"), 4, 40)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m8_T40, std::string("medium"), 8, 40)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m9_T40, std::string("medium"), 9, 40)->Unit(benchmark::kMillisecond);
// Level-threshold sweep: deeper pipelines shift work from solve back into
// the replicator.
BENCHMARK_CAPTURE(BM_Fig3, medium_m4_T30, std::string("medium"), 4, 30)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m4_T50, std::string("medium"), 4, 50)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m4_T60, std::string("medium"), 4, 60)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, medium_m4_T80, std::string("medium"), 4, 80)->Unit(benchmark::kMillisecond);
// The 'hard' corpus entry has a genuinely branchy tree (Fig. 2 reaches
// split width 7 on it): the throttle cap is visible here.
BENCHMARK_CAPTURE(BM_Fig3, hard_m1_T60, std::string("hard"), 1, 60)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, hard_m2_T60, std::string("hard"), 2, 60)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, hard_m4_T60, std::string("hard"), 4, 60)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, hard_m9_T60, std::string("hard"), 9, 60)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig3, hard_m4_T40, std::string("hard"), 4, 40)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
