/// Record-routing microbenchmark: the per-record cost of best-match branch
/// selection at a 16-branch parallel combinator — the overhead the
/// S-Net-vs-CnC evaluation (arXiv:1305.7167) identifies as the gap between
/// S-Net and hand-tuned task frameworks.
///
/// Three measurements, all over the same 16 record shapes:
///  * `matcher_legacy` — the pre-PR decision path replicated verbatim:
///    per-variant label scans through `Record::has`, and a second scoring
///    pass over all branches on ties.
///  * `matcher_shape`  — the production `ParallelRouter`: bloom-mask
///    reject + memoized subset test, full decision memoized per ShapeId.
///  * `e2e`            — records/sec through a real 16-branch network
///    (dispatcher + filters), the end-to-end view of the same path.
///
/// Emits BENCH_routing.json including the legacy→shape speedup; the
/// acceptance bar for this PR is speedup >= 2.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/router.hpp"
#include "snet/rtypes.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

constexpr int kBranches = 16;
constexpr int kDecisions = 2'000'000;
constexpr int kE2eRecords = 200'000;

std::string field_name(int i) {
  std::string name = "f";
  name += std::to_string(i);
  return name;
}

/// Branch input types as the network instantiation would infer them:
/// branch i requires {f_i, payload}.
std::vector<MultiType> branch_types() {
  std::vector<MultiType> types;
  types.reserve(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    types.push_back(MultiType{RecordType::of({field_name(i), "payload"})});
  }
  return types;
}

/// One record per branch shape: {f_i, payload}.
std::vector<Record> shaped_records() {
  std::vector<Record> records;
  records.reserve(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    Record r;
    r.set_field(field_label(field_name(i)), make_value(i));
    r.set_field(field_label("payload"), make_value(i * 31));
    records.push_back(std::move(r));
  }
  return records;
}

// ----------------------------------------------------- pre-PR decision path

/// The seed's MultiType::match_score: a fresh per-label scan per variant.
int legacy_match_score(const MultiType& mt, const Record& r) {
  int best = -1;
  for (const auto& v : mt.variants()) {
    bool ok = true;
    for (const Label l : v.labels()) {
      if (!r.has(l)) {
        ok = false;
        break;
      }
    }
    if (ok && static_cast<int>(v.size()) > best) {
      best = static_cast<int>(v.size());
    }
  }
  return best;
}

/// The seed's ParallelEntity::on_record selection, including the second
/// match_score pass over every branch when scores tie.
std::size_t legacy_route(const std::vector<MultiType>& branches, const Record& r,
                         std::uint64_t& tie_break) {
  int best = -1;
  std::size_t chosen = 0;
  bool tie = false;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const int score = legacy_match_score(branches[i], r);
    if (score > best) {
      best = score;
      chosen = i;
      tie = false;
    } else if (score == best && score >= 0) {
      tie = true;
    }
  }
  if (tie) {
    std::vector<std::size_t> tied;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      if (legacy_match_score(branches[i], r) == best) {
        tied.push_back(i);
      }
    }
    chosen = tied[tie_break++ % tied.size()];
  }
  return chosen;
}

// ------------------------------------------------------------ measurements

double matcher_legacy_rps(const std::vector<MultiType>& branches,
                          const std::vector<Record>& records,
                          std::size_t& sink) {
  std::uint64_t tie_break = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kDecisions; ++i) {
    sink += legacy_route(branches, records[static_cast<std::size_t>(i) % kBranches],
                         tie_break);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return kDecisions / std::chrono::duration<double>(t1 - t0).count();
}

double matcher_shape_rps(const std::vector<MultiType>& branches,
                         const std::vector<Record>& records, std::size_t& sink) {
  detail::ParallelRouter router{branches};
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kDecisions; ++i) {
    sink += router.route(records[static_cast<std::size_t>(i) % kBranches]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return kDecisions / std::chrono::duration<double>(t1 - t0).count();
}

/// 16 identity filters under a nested parallel combinator.
Net routing_net() {
  Net net;
  for (int i = 0; i < kBranches; ++i) {
    const std::string f = field_name(i);
    Net leaf = filter("{" + f + ", payload} -> {" + f + ", payload}");
    net = net ? parallel(std::move(net), std::move(leaf)) : std::move(leaf);
  }
  return net;
}

double e2e_rps() {
  Options opts;
  opts.workers = 4;
  Network net(routing_net(), std::move(opts));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kE2eRecords; ++i) {
    Record r;
    r.set_field(field_label(field_name(i % kBranches)), make_value(i));
    r.set_field(field_label("payload"), make_value(i * 31));
    net.input().inject(std::move(r));
  }
  const std::vector<Record> out = net.output().collect();
  const auto t1 = std::chrono::steady_clock::now();
  if (out.size() != kE2eRecords) {
    std::fprintf(stderr, "e2e record loss: %zu/%d\n", out.size(), kE2eRecords);
    return 0;
  }
  return kE2eRecords / std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const std::vector<MultiType> branches = branch_types();
  const std::vector<Record> records = shaped_records();

  std::size_t sink = 0;
  // Warmup both paths (and the shape/transition TLS caches).
  matcher_legacy_rps(branches, records, sink);
  matcher_shape_rps(branches, records, sink);

  const double legacy = matcher_legacy_rps(branches, records, sink);
  const double shape = matcher_shape_rps(branches, records, sink);
  const double speedup = shape / legacy;
  e2e_rps();  // warmup
  const double e2e = e2e_rps();

  std::printf("matcher_legacy  %12.0f decisions/sec\n", legacy);
  std::printf("matcher_shape   %12.0f decisions/sec\n", shape);
  std::printf("speedup         %12.2fx %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x: OK)" : "(< 2x: REGRESSION)");
  std::printf("e2e_16branch    %12.0f records/sec\n", e2e);
  std::printf("(sink %zu)\n", sink);

  std::vector<benchjson::Row> rows;
  benchjson::Row r1;
  r1.set("bench", std::string("routing_matcher"))
      .set("mode", std::string("legacy"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("decisions", static_cast<std::int64_t>(kDecisions))
      .set("records_per_sec", legacy);
  rows.push_back(std::move(r1));
  benchjson::Row r2;
  r2.set("bench", std::string("routing_matcher"))
      .set("mode", std::string("shape"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("decisions", static_cast<std::int64_t>(kDecisions))
      .set("records_per_sec", shape)
      .set("speedup_vs_legacy", speedup);
  rows.push_back(std::move(r2));
  benchjson::Row r3;
  r3.set("bench", std::string("routing_e2e"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("records", static_cast<std::int64_t>(kE2eRecords))
      .set("records_per_sec", e2e);
  rows.push_back(std::move(r3));
  benchjson::write("routing", rows);
  std::printf("wrote BENCH_routing.json\n");
  // Fail CI on a matcher regression below the 2x bar *or* on e2e record
  // loss (e2e_rps reports loss as 0).
  return speedup >= 2.0 && e2e > 0 ? 0 : 1;
}
