/// Record-routing microbenchmark: the per-record cost of best-match branch
/// selection at a 16-branch parallel combinator — the overhead the
/// S-Net-vs-CnC evaluation (arXiv:1305.7167) identifies as the gap between
/// S-Net and hand-tuned task frameworks.
///
/// Three measurements, all over the same 16 record shapes:
///  * `matcher_legacy` — the pre-PR decision path replicated verbatim:
///    per-variant label scans through `Record::has`, and a second scoring
///    pass over all branches on ties.
///  * `matcher_shape`  — the production `ParallelRouter`: bloom-mask
///    reject + memoized subset test, full decision memoized per ShapeId.
///  * `e2e`            — records/sec through a real 16-branch network
///    (dispatcher + filters), the end-to-end view of the same path.
///
/// Emits BENCH_routing.json including the legacy→shape speedup; the
/// acceptance bar for this PR is speedup >= 2.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "snet/net.hpp"
#include "snet/network.hpp"
#include "snet/router.hpp"
#include "snet/rtypes.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

constexpr int kBranches = 16;
constexpr int kDecisions = 2'000'000;
constexpr int kE2eRecords = 400'000;

std::string field_name(int i) {
  std::string name = "f";
  name += std::to_string(i);
  return name;
}

/// Branch input types as the network instantiation would infer them:
/// branch i requires {f_i, payload}.
std::vector<MultiType> branch_types() {
  std::vector<MultiType> types;
  types.reserve(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    types.push_back(MultiType{RecordType::of({field_name(i), "payload"})});
  }
  return types;
}

/// One record per branch shape: {f_i, payload}.
std::vector<Record> shaped_records() {
  std::vector<Record> records;
  records.reserve(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    Record r;
    r.set_field(field_label(field_name(i)), make_value(i));
    r.set_field(field_label("payload"), make_value(i * 31));
    records.push_back(std::move(r));
  }
  return records;
}

// ----------------------------------------------------- pre-PR decision path

/// The seed's MultiType::match_score: a fresh per-label scan per variant.
int legacy_match_score(const MultiType& mt, const Record& r) {
  int best = -1;
  for (const auto& v : mt.variants()) {
    bool ok = true;
    for (const Label l : v.labels()) {
      if (!r.has(l)) {
        ok = false;
        break;
      }
    }
    if (ok && static_cast<int>(v.size()) > best) {
      best = static_cast<int>(v.size());
    }
  }
  return best;
}

/// The seed's ParallelEntity::on_record selection, including the second
/// match_score pass over every branch when scores tie.
std::size_t legacy_route(const std::vector<MultiType>& branches, const Record& r,
                         std::uint64_t& tie_break) {
  int best = -1;
  std::size_t chosen = 0;
  bool tie = false;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const int score = legacy_match_score(branches[i], r);
    if (score > best) {
      best = score;
      chosen = i;
      tie = false;
    } else if (score == best && score >= 0) {
      tie = true;
    }
  }
  if (tie) {
    std::vector<std::size_t> tied;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      if (legacy_match_score(branches[i], r) == best) {
        tied.push_back(i);
      }
    }
    chosen = tied[tie_break++ % tied.size()];
  }
  return chosen;
}

// ------------------------------------------------------------ measurements

double matcher_legacy_rps(const std::vector<MultiType>& branches,
                          const std::vector<Record>& records,
                          std::size_t& sink) {
  std::uint64_t tie_break = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kDecisions; ++i) {
    sink += legacy_route(branches, records[static_cast<std::size_t>(i) % kBranches],
                         tie_break);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return kDecisions / std::chrono::duration<double>(t1 - t0).count();
}

double matcher_shape_rps(const std::vector<MultiType>& branches,
                         const std::vector<Record>& records, std::size_t& sink) {
  detail::ParallelRouter router{branches};
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kDecisions; ++i) {
    sink += router.route(records[static_cast<std::size_t>(i) % kBranches]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return kDecisions / std::chrono::duration<double>(t1 - t0).count();
}

/// 16 identity filters under a nested parallel combinator.
Net routing_net() {
  Net net;
  for (int i = 0; i < kBranches; ++i) {
    const std::string f = field_name(i);
    Net leaf = filter("{" + f + ", payload} -> {" + f + ", payload}");
    net = net ? parallel(std::move(net), std::move(leaf)) : std::move(leaf);
  }
  return net;
}

/// End-to-end records/sec through the 16-branch network. \p batching
/// toggles the runtime's batched-quantum pipeline (Options::batching) —
/// the ablation axis: both modes run the same topology, workers, quantum
/// and client calls (chunked inject_all + collect), so the ratio isolates
/// the batch pipeline itself.
double e2e_rps(bool batching) {
  Options opts;
  // One worker: the stream is a pipeline, so added workers only buy
  // entity-level parallelism this single-chain topology cannot use (and
  // on small hosts they cost context switches). The quantum is sized so
  // an entity drains a full client chunk per scheduling turn.
  opts.workers = 1;
  opts.batching = batching;
  opts.quantum = 1024;
  Network net(routing_net(), std::move(opts));
  constexpr int kChunk = 4096;  // keeps injection pipelined with the drain
  // Labels interned once: the measurement targets the runtime's record
  // path, not std::string hashing in the client loop.
  std::vector<Label> branch_field;
  branch_field.reserve(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    branch_field.push_back(field_label(field_name(i)));
  }
  const Label payload = field_label("payload");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Record> chunk;
  chunk.reserve(kChunk);
  for (int i = 0; i < kE2eRecords; ++i) {
    Record r;
    r.set_field(branch_field[static_cast<std::size_t>(i % kBranches)],
                make_value(i));
    r.set_field(payload, make_value(i * 31));
    chunk.push_back(std::move(r));
    if (static_cast<int>(chunk.size()) == kChunk || i + 1 == kE2eRecords) {
      net.input().inject_all(std::move(chunk));
      chunk = {};
      chunk.reserve(kChunk);
    }
  }
  const std::vector<Record> out = net.output().collect();
  const auto t1 = std::chrono::steady_clock::now();
  if (out.size() != kE2eRecords) {
    std::fprintf(stderr, "e2e record loss: %zu/%d\n", out.size(), kE2eRecords);
    return 0;
  }
  return kE2eRecords / std::chrono::duration<double>(t1 - t0).count();
}

/// Best of five timed runs per mode: the e2e path is a full runtime
/// (threads, scheduler wakeups), so single runs are at the mercy of
/// whatever else the host is doing; the max is the stable estimate of
/// what the pipeline sustains.
double e2e_rps_best(bool batching) {
  double best = 0;
  for (int i = 0; i < 5; ++i) {
    best = std::max(best, e2e_rps(batching));
  }
  return best;
}

}  // namespace

int main() {
  const std::vector<MultiType> branches = branch_types();
  const std::vector<Record> records = shaped_records();

  std::size_t sink = 0;
  // Warmup both paths (and the shape/transition TLS caches).
  matcher_legacy_rps(branches, records, sink);
  matcher_shape_rps(branches, records, sink);

  // Best of three per matcher leg, like the e2e runs: the ratio of two
  // single measurements wobbles with whatever else the host runs, the
  // ratio of two quiet-window maxima does not.
  double legacy = 0;
  double shape = 0;
  for (int i = 0; i < 3; ++i) {
    legacy = std::max(legacy, matcher_legacy_rps(branches, records, sink));
    shape = std::max(shape, matcher_shape_rps(branches, records, sink));
  }
  const double speedup = shape / legacy;
  e2e_rps(false);  // warmup
  const double e2e_scalar = e2e_rps_best(false);
  e2e_rps(true);  // warmup
  const double e2e = e2e_rps_best(true);
  const double batch_speedup = e2e_scalar > 0 ? e2e / e2e_scalar : 0;

  std::printf("matcher_legacy  %12.0f decisions/sec\n", legacy);
  std::printf("matcher_shape   %12.0f decisions/sec\n", shape);
  std::printf("speedup         %12.2fx %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x: OK)" : "(< 2x: REGRESSION)");
  std::printf("e2e_scalar      %12.0f records/sec\n", e2e_scalar);
  std::printf("e2e_batched     %12.0f records/sec\n", e2e);
  std::printf("batch_speedup   %12.2fx %s\n", batch_speedup,
              batch_speedup >= 3.0 ? "(>= 3x: OK)" : "(< 3x: REGRESSION)");
  std::printf("(sink %zu)\n", sink);

  std::vector<benchjson::Row> rows;
  benchjson::Row r1;
  r1.set("bench", std::string("routing_matcher"))
      .set("mode", std::string("legacy"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("decisions", static_cast<std::int64_t>(kDecisions))
      .set("records_per_sec", legacy);
  rows.push_back(std::move(r1));
  benchjson::Row r2;
  r2.set("bench", std::string("routing_matcher"))
      .set("mode", std::string("shape"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("decisions", static_cast<std::int64_t>(kDecisions))
      .set("records_per_sec", shape)
      .set("speedup_vs_legacy", speedup);
  rows.push_back(std::move(r2));
  benchjson::Row r3;
  r3.set("bench", std::string("routing_e2e"))
      .set("mode", std::string("scalar"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("records", static_cast<std::int64_t>(kE2eRecords))
      .set("records_per_sec", e2e_scalar);
  rows.push_back(std::move(r3));
  benchjson::Row r4;
  r4.set("bench", std::string("routing_e2e"))
      .set("mode", std::string("batched"))
      .set("branches", static_cast<std::int64_t>(kBranches))
      .set("records", static_cast<std::int64_t>(kE2eRecords))
      .set("records_per_sec", e2e)
      .set("e2e_batch_speedup", batch_speedup);
  rows.push_back(std::move(r4));
  benchjson::write("routing", rows);
  std::printf("wrote BENCH_routing.json\n");
  // Fail CI on a matcher regression below the 2x bar, on e2e record loss
  // (e2e_rps reports loss as 0), or on the batch pipeline falling under
  // its in-binary sanity floor (the authoritative >= 4x check is the
  // bench_diff gate on e2e_batch_speedup against the committed baseline).
  return speedup >= 2.0 && e2e_scalar > 0 && e2e > 0 && batch_speedup >= 3.0 ? 0
                                                                             : 1;
}
