/// Multi-tenant fairness bench for the per-session QoS machinery: N fast
/// client sessions stream through a shared two-stage pipeline while one
/// *slow* session fills its bounded output credit account and stops
/// reading. Before per-session output credit, the slow tenant's full
/// buffer stalled the shared output entity and head-of-line blocked every
/// fast session (the PR-3 known limitation); now it must only throttle
/// itself.
///
/// Emits BENCH_fairness.json (per-mode fast throughput, the
/// fairness_fast_vs_solo ratio gated by tools/bench_diff.py) and
/// *enforces* the acceptance bars:
///   * fast sessions' aggregate throughput with the stalled peer >= 80%
///     of their throughput without it, and
///   * the slow session never wedges the network: once its client reads,
///     every record arrives and the network quiesces (a watchdog turns a
///     wedge into a non-zero exit instead of a hung CI job).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

constexpr int kFastSessions = 3;
constexpr int kFastRecords = 8000;   // per fast session
constexpr int kSlowRecords = 400;    // injected at the slow session
constexpr std::size_t kBound = 32;   // inbox + output credit bound

Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;  // unsigned: the sum may wrap
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

Record int_rec(int v) {
  Record r;
  r.set_field(field_label("x"), make_value(v));
  return r;
}

Options make_options() {
  Options o;
  o.workers = 4;
  o.inbox_capacity = kBound;
  o.output_capacity = kBound;
  return o;
}

/// Runs one fast client (feeder + drainer) to completion; returns its
/// consumed count (must equal kFastRecords).
std::uint64_t run_fast_client(Network& net, int base) {
  Session s = net.open_session();
  std::uint64_t consumed = 0;
  std::thread feeder([&s, base] {
    for (int i = 0; i < kFastRecords; ++i) {
      s.input().inject(int_rec(base + i));
    }
    s.close();
  });
  while (s.output().next().has_value()) {
    ++consumed;
  }
  feeder.join();
  return consumed;
}

struct PhaseResult {
  double fast_records_per_sec = 0;  // aggregate across the fast sessions
  std::uint64_t slow_received = 0;
  bool ok = true;
};

/// One measured phase: kFastSessions fast clients; with \p with_slow_peer
/// an additional session stalls with a full output credit account for the
/// whole fast phase and is drained afterwards.
PhaseResult run_phase(bool with_slow_peer) {
  Network net(slow_box("stage1", 150) >> slow_box("stage2", 450),
              make_options());
  PhaseResult res;

  std::atomic<bool> fast_done{false};
  std::thread slow_client;
  if (with_slow_peer) {
    slow_client = std::thread([&net, &fast_done, &res] {
      Session slow = net.open_session();
      std::thread slow_feeder([&slow] {
        for (int i = 0; i < kSlowRecords; ++i) {
          // Blocks on the session's own output credit once the unread
          // account fills — that is the point.
          slow.input().inject(int_rec(i));
        }
        slow.close();
      });
      // Read nothing while the fast sessions run: the old design wedges
      // the shared output entity right here.
      while (!fast_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::uint64_t got = 0;
      while (slow.output().next().has_value()) {
        ++got;
      }
      slow_feeder.join();
      res.slow_received = got;
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> consumed{0};
    clients.reserve(kFastSessions);
    for (int c = 0; c < kFastSessions; ++c) {
      clients.emplace_back([&net, &consumed, c] {
        consumed.fetch_add(run_fast_client(net, c * 1000000));
      });
    }
    for (auto& t : clients) {
      t.join();
    }
    if (consumed.load() !=
        static_cast<std::uint64_t>(kFastSessions) * kFastRecords) {
      std::fprintf(stderr, "record loss in fast sessions: %llu of %llu\n",
                   static_cast<unsigned long long>(consumed.load()),
                   static_cast<unsigned long long>(
                       static_cast<std::uint64_t>(kFastSessions) * kFastRecords));
      res.ok = false;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.fast_records_per_sec =
      static_cast<double>(kFastSessions) * kFastRecords /
      std::chrono::duration<double>(t1 - t0).count();

  fast_done.store(true, std::memory_order_release);
  if (slow_client.joinable()) {
    slow_client.join();
    if (res.slow_received != static_cast<std::uint64_t>(kSlowRecords)) {
      std::fprintf(stderr, "slow session lost records: %llu of %d\n",
                   static_cast<unsigned long long>(res.slow_received),
                   kSlowRecords);
      res.ok = false;
    }
  }
  net.wait();  // the slow session must not wedge quiescence either
  return res;
}

PhaseResult best_of(int reps, bool with_slow_peer) {
  PhaseResult best = run_phase(with_slow_peer);
  bool all_ok = best.ok;
  for (int i = 1; i < reps; ++i) {
    const PhaseResult again = run_phase(with_slow_peer);
    all_ok = all_ok && again.ok;
    if (again.fast_records_per_sec > best.fast_records_per_sec) {
      best = again;
    }
  }
  best.ok = all_ok;
  return best;
}

}  // namespace

int main() {
  setenv("SNETSAC_THREADS", "4", /*overwrite=*/0);

  // Watchdog: a head-of-line wedge shows up as a hang; fail loudly
  // instead of eating the CI job timeout.
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool finished = false;
  std::thread watchdog([&] {
    std::unique_lock lock(watchdog_mu);
    if (!watchdog_cv.wait_for(lock, std::chrono::seconds(240),
                              [&] { return finished; })) {
      std::fprintf(stderr, "FAIL: fairness bench wedged (slow session "
                           "blocked the network)\n");
      std::_Exit(3);
    }
  });

  run_phase(false);  // warmup
  const PhaseResult solo = best_of(3, /*with_slow_peer=*/false);
  const PhaseResult contended = best_of(3, /*with_slow_peer=*/true);

  {
    const std::lock_guard lock(watchdog_mu);
    finished = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();

  const double ratio =
      contended.fast_records_per_sec / solo.fast_records_per_sec;

  std::vector<benchjson::Row> rows;
  for (const auto* r : {&solo, &contended}) {
    benchjson::Row row;
    row.set("bench", std::string("session_fairness"))
        .set("mode", std::string(r == &solo ? "solo" : "contended"))
        .set("fast_sessions", static_cast<std::int64_t>(kFastSessions))
        .set("records", static_cast<std::int64_t>(kFastRecords))
        .set("bound", static_cast<std::int64_t>(kBound))
        .set("records_per_sec", r->fast_records_per_sec)
        .set("slow_received", static_cast<std::int64_t>(r->slow_received));
    rows.push_back(std::move(row));
  }
  benchjson::Row summary;
  summary.set("bench", std::string("session_fairness_summary"))
      .set("fairness_fast_vs_solo", ratio);
  rows.push_back(std::move(summary));
  benchjson::write("fairness", rows);

  std::printf("solo:      %d fast sessions  %.0f records/sec aggregate\n",
              kFastSessions, solo.fast_records_per_sec);
  std::printf("contended: + stalled slow peer  %.0f records/sec aggregate, "
              "slow received %llu/%d\n",
              contended.fast_records_per_sec,
              static_cast<unsigned long long>(contended.slow_received),
              kSlowRecords);
  std::printf("fast throughput with stalled peer: %.0f%% of solo\n",
              100.0 * ratio);
  std::printf("wrote BENCH_fairness.json\n");

  int rc = 0;
  if (!solo.ok || !contended.ok) {
    rc = 2;
  }
  if (ratio < 0.80) {
    std::fprintf(stderr,
                 "FAIL: fast-session throughput %.0f%% of solo (< 80%%) "
                 "with one stalled peer session\n",
                 100.0 * ratio);
    rc = 1;
  }
  return rc;
}
