/// With-loop engine microbenchmark: the compiled segment engine against the
/// interpreted per-element reference, on the same generators (the
/// `Context::compiled` ablation axis — both modes run identical With
/// objects, single-threaded, so the ratio isolates the engine).
///
/// Four measurements:
///  * `dense_genarray`   — 1024x1024 rank-2 genarray from a coordinate
///    kernel body: the paper's bread-and-butter dense with-loop. GATED.
///  * `modarray_addnumber` — sudoku::add_number on a 25x25 board (15625-cell
///    options cube, the paper's four-generator modarray). GATED.
///  * `fold_sum`         — dense rank-2 fold through the same kernel.
///  * `fused_chain`      — genarray→map→zip_with→fold in one segment pass
///    vs the unfused interpreted pipeline (intermediates and all).
///
/// Emits BENCH_withloop.json with elements/sec per mode and the in-binary
/// `withloop_compiled_speedup` ratio on compiled rows; the acceptance bar
/// for the two gated cases is >= 3x, enforced here and (against the
/// committed baseline) by tools/bench_diff.py.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sacpp/ops.hpp"
#include "sacpp/with_loop.hpp"
#include "sudoku/rules.hpp"

using sac::Array;
using sac::Context;
using sac::Shape;
using sac::With;

namespace {

constexpr double kMinSeconds = 0.15;
constexpr int kRuns = 5;

/// Best-of-kRuns elements/sec for \p fn, each run looping until
/// kMinSeconds have elapsed. \p elems is the element count one fn() call
/// processes. The clock is read once per batch of calls so timing overhead
/// stays out of the measurement (one fn() can be well under a microsecond).
template <class Fn>
double best_eps(std::int64_t elems, const Fn& fn) {
  constexpr int kBatch = 64;
  double best = 0;
  for (int r = 0; r < kRuns; ++r) {
    std::int64_t calls = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double secs = 0;
    do {
      for (int b = 0; b < kBatch; ++b) {
        fn();
      }
      calls += kBatch;
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count();
    } while (secs < kMinSeconds);
    best = std::max(best, static_cast<double>(elems * calls) / secs);
  }
  return best;
}

// --------------------------------------------------------- dense genarray

constexpr std::int64_t kN = 1024;

double dense_genarray_eps(bool compiled, std::int64_t& sink) {
  const Context ctx{1, 1024, compiled};
  const auto w = With<std::int64_t>().gen_kernel(
      {0, 0}, {kN, kN},
      [](std::int64_t i, std::int64_t j) { return i * 3 + j; });
  return best_eps(kN * kN, [&] {
    const auto a = w.genarray(Shape{kN, kN}, 0, ctx);
    sink += a.linear(kN);
  });
}

// ----------------------------------------------------- addNumber modarray

double addnumber_eps(bool compiled, std::int64_t& sink) {
  // 25x25 board (n=5, the old suite's largest): a 15625-cell options cube
  // per add_number call. add_number uses the process default context;
  // save/restore around the measurement.
  const int N = 25;
  Context& ctx = sac::default_context();
  const Context saved = ctx;
  ctx = Context{1, 1024, compiled};
  sudoku::BoardArray board(Shape{N, N}, 0);
  sudoku::OptsArray opts = sudoku::initial_opts(N);
  int k = 0;
  const double eps = best_eps(static_cast<std::int64_t>(N) * N * N, [&] {
    auto [b, o] =
        sudoku::add_number(k % N, (k / N) % N, 1 + (k % N), std::move(board),
                           std::move(opts));
    board = std::move(b);
    opts = std::move(o);
    ++k;
    sink += opts.linear(0) ? 1 : 0;
  });
  ctx = saved;
  return eps;
}

// ------------------------------------------------------------------ fold

double fold_sum_eps(bool compiled, std::int64_t& sink) {
  const Context ctx{1, 1024, compiled};
  const auto w = With<std::int64_t>().gen_kernel(
      {0, 0}, {kN, kN},
      [](std::int64_t i, std::int64_t j) { return i ^ j; });
  return best_eps(kN * kN, [&] {
    sink += w.fold([](std::int64_t a, std::int64_t b) { return a + b; }, 0, ctx);
  });
}

// ----------------------------------------------------------- fused chain

double fused_chain_eps(bool compiled, std::int64_t& sink) {
  const Context ctx{1, 1024, compiled};
  const Array<std::int64_t> other(Shape{kN, kN}, 7);
  const auto chain =
      With<std::int64_t>()
          .gen_kernel({0, 0}, {kN, kN},
                      [](std::int64_t i, std::int64_t j) { return i + j; })
          .lazy_genarray(Shape{kN, kN}, 0)
          .map([](std::int64_t v) { return v * 2 + 1; })
          .zip_with(other, [](std::int64_t v, std::int64_t o) { return v - o; });
  return best_eps(kN * kN, [&] {
    sink += chain.fold([](std::int64_t a, std::int64_t b) { return a + b; }, 0,
                       ctx);
  });
}

void emit(std::vector<benchjson::Row>& rows, const std::string& bench,
          const char* mode, std::int64_t elems, double eps, double speedup) {
  benchjson::Row r;
  r.set("bench", bench)
      .set("mode", std::string(mode))
      .set("threads", static_cast<std::int64_t>(1))
      .set("elements", elems)
      .set("elements_per_sec", eps);
  if (speedup > 0) {
    r.set("withloop_compiled_speedup", speedup);
  }
  rows.push_back(std::move(r));
}

}  // namespace

int main() {
  std::int64_t sink = 0;

  struct Case {
    const char* name;
    double (*run)(bool, std::int64_t&);
    std::int64_t elems;
    bool gated;
  };
  const Case cases[] = {
      {"withloop_dense_genarray", dense_genarray_eps, kN * kN, true},
      {"withloop_modarray_addnumber", addnumber_eps, 25 * 25 * 25, true},
      {"withloop_fold_sum", fold_sum_eps, kN * kN, false},
      {"withloop_fused_chain", fused_chain_eps, kN * kN, false},
  };

  std::vector<benchjson::Row> rows;
  bool ok = true;
  for (const Case& c : cases) {
    c.run(true, sink);  // warmup (pools, allocator, branch predictors)
    const double interp = c.run(false, sink);
    const double comp = c.run(true, sink);
    const double speedup = interp > 0 ? comp / interp : 0;
    std::printf("%-28s interpreted %12.0f elems/sec\n", c.name, interp);
    std::printf("%-28s compiled    %12.0f elems/sec\n", c.name, comp);
    std::printf("%-28s speedup     %12.2fx %s\n", c.name, speedup,
                !c.gated           ? "(informational)"
                : speedup >= 3.0 ? "(>= 3x: OK)"
                                 : "(< 3x: REGRESSION)");
    emit(rows, c.name, "interpreted", c.elems, interp, 0);
    emit(rows, c.name, "compiled", c.elems, comp, speedup);
    if (c.gated && speedup < 3.0) {
      ok = false;
    }
  }

  benchjson::write("withloop", rows);
  std::printf("wrote BENCH_withloop.json (sink %lld)\n",
              static_cast<long long>(sink));
  // Fail CI when either gated case falls under the in-binary 3x bar; the
  // drift check against the committed baseline is the bench_diff gate on
  // withloop_compiled_speedup.
  return ok ? 0 : 1;
}
