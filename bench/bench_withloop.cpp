/// E1 — §2/§3 data-parallel substrate: with-loop execution.
///
/// The paper's claim for the SaC layer is that data parallelism is
/// implicit: enabling multithreaded execution requires no program change.
/// These benchmarks measure the with-loop engine across thread counts —
/// including the exact four-generator addNumber with-loop of Section 3 —
/// and report elements/second. (On a single-core host the thread sweep
/// shows scheduling overhead rather than speedup; the *result invariance*
/// is covered by tests.)

#include <benchmark/benchmark.h>

#include "sacpp/with_loop.hpp"
#include "sudoku/rules.hpp"

using sac::Context;
using sac::Index;
using sac::Shape;
using sac::With;

namespace {

void BM_GenarrayDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Context ctx{static_cast<unsigned>(state.range(1)), 1024};
  for (auto _ : state) {
    auto a = With<int>()
                 .gen({0, 0}, {n, n},
                      [](const Index& iv) { return static_cast<int>(iv[0] + iv[1]); })
                 .genarray(Shape{n, n}, 0, ctx);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_GenarrayDense)
    ->ArgsProduct({{64, 256, 1024}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

void BM_ModarrayAddNumber(benchmark::State& state) {
  // The paper's addNumber with-loop on an n²×n² board (4 generators on a
  // rank-3 bool array).
  const int n = static_cast<int>(state.range(0));
  auto [board, opts] = sudoku::compute_opts(sudoku::empty_board(n));
  int i = 0;
  for (auto _ : state) {
    auto [b2, o2] = sudoku::add_number(i % (n * n), (i / 3) % (n * n), 1 + i % (n * n),
                                       board, opts);
    benchmark::DoNotOptimize(o2);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * n * n * n);
  state.SetLabel("board " + std::to_string(n * n) + "x" + std::to_string(n * n));
}
BENCHMARK(BM_ModarrayAddNumber)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_FoldSum(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Context ctx{static_cast<unsigned>(state.range(1)), 1024};
  for (auto _ : state) {
    const auto s = With<std::int64_t>()
                       .gen({0}, {n}, [](const Index& iv) { return iv[0]; })
                       .fold([](std::int64_t a, std::int64_t b) { return a + b; }, 0,
                             ctx);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_FoldSum)
    ->ArgsProduct({{1 << 14, 1 << 18}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

void BM_MultiGeneratorOverlap(benchmark::State& state) {
  // Ordered overlapping generators (the paper's precedence semantics).
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto a = With<int>()
                 .gen_val({0, 0}, {n, n}, 1)
                 .gen_val({n / 4, n / 4}, {3 * n / 4, 3 * n / 4}, 2)
                 .gen_val({n / 3, n / 3}, {2 * n / 3, 2 * n / 3}, 3)
                 .genarray(Shape{n, n}, 0);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MultiGeneratorOverlap)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_StridedGenerator(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto a = With<int>()
                 .gen_val({0}, {n}, 1)
                 .step({4})
                 .width({2})
                 .genarray(Shape{n}, 0);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StridedGenerator)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
