/// The unified-pool bench: SAC-inside-S-Net, the workload where the old
/// dual-pool design contended worst. Every box quantum opens a
/// data-parallel with-loop; under the unified executor the with-loop
/// chunks and the entity quanta share one worker set (the box's worker
/// helps and steals during the join instead of blocking a pool slot).
///
/// Emits BENCH_unified_pool.json: threads (concurrency cap swept),
/// executor_threads (actual OS threads — one pool, no oversubscription),
/// records/sec, quanta, steals.

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "runtime/executor.hpp"
#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

/// `(x) -> (x)` box whose body folds a 4k-element with-loop — enough work
/// that chunking matters, small enough that scheduling overhead shows.
Net sac_box(sac::Context ctx) {
  return box("crunch", "(x) -> (x)",
             [ctx](const BoxInput& in, BoxOutput& out) {
               const int x = in.get<int>("x");
               const auto sum =
                   sac::With<std::int64_t>()
                       .gen({0}, {4096},
                            [&](const sac::Index& iv) { return (iv[0] * 7 + x) % 97; })
                       .fold([](std::int64_t a, std::int64_t b) { return a + b; },
                             0, ctx);
               out.out(1, make_value(static_cast<int>(sum % 100000)));
             });
}

struct RunResult {
  double seconds = 0;
  std::uint64_t quanta = 0;
  std::uint64_t steals = 0;
};

RunResult run_once(unsigned threads, int records) {
  const sac::Context ctx{threads, 256};
  Options opts;
  opts.workers = threads;
  Network net(split(sac_box(ctx), "k"), std::move(opts));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < records; ++i) {
    Record r;
    r.set_field(field_label("x"), make_value(i));
    r.set_tag(tag_label("k"), i % 8);
    net.input().inject(std::move(r));
  }
  net.output().collect();
  const auto t1 = std::chrono::steady_clock::now();
  // Quantum/steal counters are per-network now (NetworkStats), so no
  // before/after delta against a pool-wide number is needed.
  const NetworkStats stats = net.stats();
  RunResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.quanta = stats.quanta;
  res.steals = stats.steals;
  return res;
}

}  // namespace

int main() {
  constexpr int kRecords = 500;
  const auto executor_threads =
      static_cast<std::int64_t>(snetsac::runtime::Executor::global().size());
  std::vector<benchjson::Row> rows;
  for (const unsigned threads : {1U, 2U, 4U, 8U}) {
    run_once(threads, kRecords / 5);  // warmup
    // Best of three: scheduling noise on small boxes dwarfs the effect
    // being measured otherwise.
    RunResult r = run_once(threads, kRecords);
    for (int rep = 1; rep < 3; ++rep) {
      const RunResult again = run_once(threads, kRecords);
      if (again.seconds < r.seconds) {
        r = again;
      }
    }
    const double rps = kRecords / r.seconds;
    std::printf(
        "sac_inside_box threads=%u executor_threads=%lld records=%d "
        "%.3fs  %.0f records/sec  quanta=%llu steals=%llu\n",
        threads, static_cast<long long>(executor_threads), kRecords, r.seconds,
        rps, static_cast<unsigned long long>(r.quanta),
        static_cast<unsigned long long>(r.steals));
    benchjson::Row row;
    row.set("bench", std::string("sac_inside_box"))
        .set("threads", static_cast<std::int64_t>(threads))
        .set("executor_threads", executor_threads)
        .set("records", static_cast<std::int64_t>(kRecords))
        .set("seconds", r.seconds)
        .set("records_per_sec", rps)
        .set("quanta", static_cast<std::int64_t>(r.quanta))
        .set("steals", static_cast<std::int64_t>(r.steals));
    rows.push_back(std::move(row));
  }
  benchjson::write("unified_pool", rows);
  std::printf("wrote BENCH_unified_pool.json\n");
  return 0;
}
