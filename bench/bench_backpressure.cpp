/// The Fig.3-style fast-producer bench for end-to-end bounded streams: a
/// producer thread slams records into a slow pipeline while a consumer
/// drains the OutputPort. Unbounded (the legacy behaviour) the backlog —
/// NetworkStats::peak_live — tracks the injected count; with an inbox
/// bound B it must stay O(B × entities), at comparable throughput.
///
/// Emits BENCH_backpressure.json (mode, bound, peak_live, records/sec,
/// suspensions, peak_ratio) and *enforces* the PR acceptance bar when
/// both modes ran: bounded peak_live ≤ bound × entities × 2 (inbox +
/// quantum overshoot), unbounded peak_live ≥ 10× the bounded one, and
/// bounded throughput within 15% of unbounded (non-zero exit otherwise).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "snet/network.hpp"
#include "snet/value.hpp"

using namespace snet;

namespace {

/// `(x) -> (x)` box that burns a fixed amount of CPU per record: the slow
/// consumer a fast producer out-runs (the paper's Fig. 3 throttling
/// scenario, reduced to its memory-behaviour core).
Net slow_box(const std::string& name, int spin_iters) {
  return box(name, "(x) -> (x)",
             [spin_iters](const BoxInput& in, BoxOutput& out) {
               volatile unsigned sink = 0;  // unsigned: the sum may wrap
               for (int i = 0; i < spin_iters; ++i) {
                 sink = sink + static_cast<unsigned>(i);
               }
               out.out(1, in.field("x"));
             });
}

struct RunResult {
  double records_per_sec = 0;
  std::int64_t peak_live = 0;
  std::uint64_t suspensions = 0;
  std::size_t entities = 0;
};

RunResult run_once(std::size_t bound, int records) {
  Options opts;
  opts.workers = 2;
  opts.inbox_capacity = bound;
  opts.output_capacity = bound;
  Network net(slow_box("stage1", 300) >> slow_box("stage2", 1200),
              std::move(opts));
  const auto t0 = std::chrono::steady_clock::now();
  // Concurrent consumer: with a bounded output buffer the pipeline would
  // otherwise (correctly) stall forever — bounded streams make the
  // consumer part of the flow-control loop.
  std::uint64_t consumed = 0;
  std::thread consumer([&net, &consumed] {
    // Span-wise drain: the consumer is part of the flow-control loop, so
    // its per-record cost is on the measured path — pop whole buffered
    // spans (one lock + one credit release each) like a real streaming
    // client would.
    std::vector<Record> span;
    while (std::size_t n = net.output().next_span(span)) {
      consumed += n;
      span.clear();
    }
  });
  for (int i = 0; i < records; ++i) {
    Record r;
    r.set_field(field_label("x"), make_value(i));
    net.input().inject(std::move(r));
  }
  net.input().close();
  consumer.join();
  const auto t1 = std::chrono::steady_clock::now();
  const NetworkStats stats = net.stats();
  RunResult res;
  res.records_per_sec =
      records / std::chrono::duration<double>(t1 - t0).count();
  res.peak_live = stats.peak_live;
  res.suspensions = stats.suspensions;
  res.entities = stats.entity_count();
  if (consumed != static_cast<std::uint64_t>(records)) {
    std::fprintf(stderr, "record loss: consumed %llu of %d\n",
                 static_cast<unsigned long long>(consumed), records);
    std::exit(2);
  }
  return res;
}

void keep_best(RunResult& best, const RunResult& again) {
  if (again.records_per_sec > best.records_per_sec) {
    best = again;
  }
}

}  // namespace

int main() {
  // A flow-controlled pipeline overlaps producer, stages, and consumer for
  // the whole run; on a 1-core pool the stall/resume latency cannot be
  // hidden and the comparison measures scheduling, not backpressure. Give
  // the bench a small fixed pool (no-op when the operator already chose).
  setenv("SNETSAC_THREADS", "4", /*overwrite=*/0);
  constexpr int kRecords = 40000;
  constexpr std::size_t kBound = 64;
  run_once(0, kRecords / 10);  // warmup

  // Interleave the repetitions of the two legs: host noise drifts on the
  // scale of whole runs, so back-to-back best-of blocks can hand one leg
  // a quiet window the other never sees — alternating gives both legs the
  // same weather and the ratio compares like with like.
  RunResult unbounded = run_once(0, kRecords);
  RunResult bounded = run_once(kBound, kRecords);
  for (int i = 1; i < 5; ++i) {
    keep_best(unbounded, run_once(0, kRecords));
    keep_best(bounded, run_once(kBound, kRecords));
  }

  const double peak_ratio =
      static_cast<double>(unbounded.peak_live) /
      static_cast<double>(bounded.peak_live > 0 ? bounded.peak_live : 1);
  const double throughput_ratio =
      bounded.records_per_sec / unbounded.records_per_sec;

  std::vector<benchjson::Row> rows;
  for (const auto* r : {&unbounded, &bounded}) {
    benchjson::Row row;
    row.set("bench", std::string("fastprod_backpressure"))
        .set("mode", std::string(r == &unbounded ? "unbounded" : "bounded"))
        .set("bound", static_cast<std::int64_t>(r == &unbounded ? 0 : kBound))
        .set("records", static_cast<std::int64_t>(kRecords))
        .set("records_per_sec", r->records_per_sec)
        .set("peak_live", r->peak_live)
        .set("suspensions", static_cast<std::int64_t>(r->suspensions))
        .set("entities", static_cast<std::int64_t>(r->entities));
    rows.push_back(std::move(row));
  }
  benchjson::Row summary;
  summary.set("bench", std::string("fastprod_backpressure_summary"))
      .set("peak_ratio_unbounded_vs_bounded", peak_ratio)
      .set("throughput_bounded_vs_unbounded", throughput_ratio);
  rows.push_back(std::move(summary));
  benchjson::write("backpressure", rows);

  std::printf("unbounded: peak_live=%lld  %.0f records/sec\n",
              static_cast<long long>(unbounded.peak_live),
              unbounded.records_per_sec);
  std::printf("bounded(B=%zu): peak_live=%lld  %.0f records/sec  "
              "suspensions=%llu\n",
              kBound, static_cast<long long>(bounded.peak_live),
              bounded.records_per_sec,
              static_cast<unsigned long long>(bounded.suspensions));
  std::printf("peak ratio %.1fx, bounded throughput %.0f%% of unbounded\n",
              peak_ratio, 100.0 * throughput_ratio);
  std::printf("wrote BENCH_backpressure.json\n");

  // Acceptance bars (see ISSUE 3). The peak bound allows inbox + one
  // quantum of overshoot per entity plus the bounded output buffer.
  const auto peak_cap = static_cast<std::int64_t>(
      bounded.entities * (kBound + Options{}.quantum) + kBound);
  int rc = 0;
  if (bounded.peak_live > peak_cap) {
    std::fprintf(stderr, "FAIL: bounded peak_live %lld > cap %lld\n",
                 static_cast<long long>(bounded.peak_live),
                 static_cast<long long>(peak_cap));
    rc = 1;
  }
  if (peak_ratio < 10.0) {
    std::fprintf(stderr, "FAIL: unbounded/bounded peak ratio %.1f < 10\n",
                 peak_ratio);
    rc = 1;
  }
  if (throughput_ratio < 0.85) {
    std::fprintf(stderr, "FAIL: bounded throughput %.0f%% of unbounded (< 85%%)\n",
                 100.0 * throughput_ratio);
    rc = 1;
  }
  return rc;
}
