/// E4 — Fig. 2: computeOpts .. [{}->{<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>}).
///
/// Full unfolding: the parallel replicator inside the serial replicator
/// explores sibling candidates concurrently. The paper bounds the
/// unfolding: ≤ 9 solveOneLevel replicas per stage (k ∈ 1..9) and
/// ≤ 9×81 = 729 instances total on 9×9 boards. Counters report the
/// observed instance count, stage count and the per-stage maximum.

#include <map>

#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"

using namespace sudoku;

namespace {

void BM_Fig2(benchmark::State& state, const std::string& name, unsigned workers) {
  const auto puzzle = corpus_board(name);
  // Snapshot/replay (tools/snetrec): with SNETSAC_SNAPSHOT_DIR set, the
  // inject stream comes from the committed fixture instead of being built
  // in code; with SNETSAC_RECORD_DIR set, the stream actually used is
  // captured for committing. Unset, both are no-ops.
  const std::vector<snet::Record> inputs =
      benchjson::snapshot_inputs("fig2_" + name)
          .value_or(std::vector<snet::Record>{board_record(puzzle)});
  benchjson::snapshot_record("fig2_" + name, inputs);
  std::size_t instances = 0;
  std::size_t stages = 0;
  std::size_t max_per_stage = 0;
  double total_records = 0;  // summed over iterations, reported as a rate
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = workers;
    snet::Network net(fig2_net(), std::move(opts));
    for (const auto& r : inputs) {
      net.input().inject(r);
    }
    net.output().collect();
    const auto stats = net.stats();
    instances = stats.count_containing("box:solveOneLevel");
    total_records += static_cast<double>(stats.records_in_containing("box:solveOneLevel"));
    stages = stats.count_containing("/stage");
    std::map<std::string, std::size_t> per_stage;
    for (const auto& e : stats.entities) {
      if (e.name.find("box:solveOneLevel") == std::string::npos) {
        continue;
      }
      per_stage[e.name.substr(0, e.name.find("/split"))] += 1;
    }
    max_per_stage = 0;
    for (const auto& [k, v] : per_stage) {
      max_per_stage = std::max(max_per_stage, v);
    }
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["stages"] = static_cast<double>(stages);
  state.counters["max_split_width"] = static_cast<double>(max_per_stage);
  state.counters["paper_bound"] = 729;
  // End-to-end throughput of the batched pipeline (rate counter —
  // benchmark divides by elapsed time): solver records per wall second.
  state.counters["box_records_per_sec"] =
      benchmark::Counter(total_records, benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig2, easy_w1, std::string("easy"), 1U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2, easy_w2, std::string("easy"), 2U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2, easy_w4, std::string("easy"), 4U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2, medium_w2, std::string("medium"), 2U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig2, hard_w2, std::string("hard"), 2U)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
