/// E2 — §3 sequential solver.
///
/// Paper: "this algorithm leads to code that typically solves 9 by 9
/// sudokus in far less than a second", and findMinTrues is introduced "to
/// keep the potential need for back-tracking as small as possible". This
/// harness times the solver per corpus puzzle under both position-picking
/// strategies and reports the search-tree size (nodes) as counters.

#include <benchmark/benchmark.h>

#include "sudoku/corpus.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {

void solver_case(benchmark::State& state, const std::string& name, Pick pick) {
  const auto puzzle = corpus_board(name);
  SolveStats last;
  for (auto _ : state) {
    SolveStats st;
    auto res = solve_board(puzzle, pick, &st);
    benchmark::DoNotOptimize(res);
    if (!res.completed) {
      state.SkipWithError("puzzle not solved");
      return;
    }
    last = st;
  }
  state.counters["nodes"] = static_cast<double>(last.nodes);
  state.counters["placements"] = static_cast<double>(last.placements);
  state.counters["depth"] = static_cast<double>(last.max_depth);
}

void BM_SolveFirstEmpty(benchmark::State& state, const std::string& name) {
  solver_case(state, name, Pick::FirstEmpty);
}
void BM_SolveMinOptions(benchmark::State& state, const std::string& name) {
  solver_case(state, name, Pick::MinOptions);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SolveMinOptions, mini4, std::string("mini4"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveMinOptions, easy, std::string("easy"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveMinOptions, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveMinOptions, hard, std::string("hard"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveMinOptions, escargot, std::string("escargot"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveFirstEmpty, easy, std::string("easy"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveFirstEmpty, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SolveFirstEmpty, hard, std::string("hard"))->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
