/// E3 — Fig. 1: computeOpts .. (solveOneLevel ** {<done>}).
///
/// Measures the pipelined network end-to-end per puzzle and reports the
/// structural quantities the paper derives: number of materialised
/// solveOneLevel replicas (bounded by the number of empty cells — at most
/// 81 on a 9×9 board) and records flowing through them. The sequential
/// solver is included as the baseline the network is compared against.

#include <benchmark/benchmark.h>

#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

using namespace sudoku;

namespace {

void BM_Fig1(benchmark::State& state, const std::string& name, unsigned workers) {
  const auto puzzle = corpus_board(name);
  std::size_t replicas = 0;
  std::uint64_t box_records = 0;
  std::size_t outputs = 0;
  double total_records = 0;  // summed over iterations, reported as a rate
  for (auto _ : state) {
    snet::Options opts;
    opts.workers = workers;
    snet::Network net(fig1_net(), std::move(opts));
    net.input().inject(board_record(puzzle));
    const auto records = net.output().collect();
    outputs = records.size();
    const auto stats = net.stats();
    replicas = stats.count_containing("box:solveOneLevel");
    box_records = stats.records_in_containing("box:solveOneLevel");
    total_records += static_cast<double>(box_records);
  }
  state.counters["replicas"] = static_cast<double>(replicas);
  state.counters["box_records"] = static_cast<double>(box_records);
  // End-to-end throughput of the batched pipeline: solver records consumed
  // per wall second across the run (rate counter — benchmark divides by
  // elapsed time), comparable between batched/scalar runtime builds.
  state.counters["box_records_per_sec"] =
      benchmark::Counter(total_records, benchmark::Counter::kIsRate);
  state.counters["solutions"] = static_cast<double>(outputs);
  state.counters["empty_cells"] =
      static_cast<double>(board_size(puzzle) * board_size(puzzle) - level(puzzle));
}

void BM_SequentialBaseline(benchmark::State& state, const std::string& name) {
  const auto puzzle = corpus_board(name);
  for (auto _ : state) {
    auto res = solve_board(puzzle);
    benchmark::DoNotOptimize(res);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SequentialBaseline, easy, std::string("easy"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SequentialBaseline, medium, std::string("medium"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SequentialBaseline, hard, std::string("hard"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig1, easy_w1, std::string("easy"), 1U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig1, easy_w2, std::string("easy"), 2U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig1, easy_w4, std::string("easy"), 4U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig1, medium_w2, std::string("medium"), 2U)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fig1, hard_w2, std::string("hard"), 2U)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
