/// E6 — §4 combinator microbenchmarks.
///
/// Overhead and throughput of the coordination primitives themselves:
/// record hops through boxes, serial chains, parallel routing (best-match
/// scoring), deterministic vs non-deterministic merge, serial/parallel
/// replication dispatch, filters and synchrocells. Records carry a small
/// int payload so the numbers measure coordination cost, not computation.

#include <benchmark/benchmark.h>

#include "snet/network.hpp"

using namespace snet;

namespace {

Net ident(const std::string& name) {
  return box(name, "(x) -> (x)",
             [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
}

Record payload(int v, std::initializer_list<std::pair<std::string_view, std::int64_t>>
                          tags = {}) {
  Record r;
  r.set_field("x", make_value(v));
  for (const auto& [n, t] : tags) {
    r.set_tag(tag_label(n), t);
  }
  return r;
}

void run_records(benchmark::State& state, const Net& topo, int batch,
                 const std::function<Record(int)>& make) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    Network net(topo, Options{});
    for (int i = 0; i < batch; ++i) {
      net.input().inject(make(i));
    }
    const auto out = net.output().collect();
    total += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
  state.counters["outputs_per_run"] = static_cast<double>(total) /
                                      static_cast<double>(state.iterations());
}

constexpr int kBatch = 1000;

void BM_SingleBoxHop(benchmark::State& state) {
  run_records(state, ident("id"), kBatch, [](int i) { return payload(i); });
}
BENCHMARK(BM_SingleBoxHop)->Unit(benchmark::kMillisecond);

void BM_SerialChain(benchmark::State& state) {
  Net n = ident("b0");
  for (int i = 1; i < state.range(0); ++i) {
    std::string bname = "b";
    bname += std::to_string(i);
    n = std::move(n) >> ident(bname);
  }
  run_records(state, n, kBatch, [](int i) { return payload(i); });
  state.counters["chain_len"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SerialChain)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FilterHop(benchmark::State& state) {
  run_records(state, filter("{x} -> {x, <seen>=1}"), kBatch,
              [](int i) { return payload(i); });
}
BENCHMARK(BM_FilterHop)->Unit(benchmark::kMillisecond);

void BM_ParallelNondet(benchmark::State& state) {
  const Net n = parallel(ident("L"), ident("R"));
  run_records(state, n, kBatch, [](int i) { return payload(i); });
}
BENCHMARK(BM_ParallelNondet)->Unit(benchmark::kMillisecond);

void BM_ParallelDet(benchmark::State& state) {
  const Net n = parallel_det(ident("L"), ident("R"));
  run_records(state, n, kBatch, [](int i) { return payload(i); });
}
BENCHMARK(BM_ParallelDet)->Unit(benchmark::kMillisecond);

void BM_SplitDispatch(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  const Net n = split(ident("w"), "k");
  run_records(state, n, kBatch, [width](int i) {
    return payload(i, {{"k", i % width}});
  });
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_SplitDispatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_StarDepth(benchmark::State& state) {
  // Each record travels `depth` stages before exiting.
  const std::int64_t depth = state.range(0);
  auto dec = box("dec", "(x, <n>) -> (x, <n>) | (x, <done>)",
                 [](const BoxInput& in, BoxOutput& out) {
                   const std::int64_t n = in.tag("n");
                   if (n <= 0) {
                     out.out(2, in.field("x"), std::int64_t{1});
                   } else {
                     out.out(1, in.field("x"), n - 1);
                   }
                 });
  const Net n = star(dec, "{<done>}");
  run_records(state, n, 200, [depth](int i) {
    return payload(i, {{"n", depth}});
  });
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_StarDepth)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SyncCellJoin(benchmark::State& state) {
  // Pairs of {a}/{b} records joined by a fresh synchrocell each time; the
  // star replicator re-arms a new cell per pair in real S-Net — here we
  // measure a single join plus pass-through traffic.
  const Net n = sync({"{a}", "{b}"});
  std::uint64_t outs = 0;
  for (auto _ : state) {
    Network net(n, Options{});
    for (int i = 0; i < 500; ++i) {
      Record ra;
      ra.set_field("a", make_value(i));
      net.input().inject(std::move(ra));
      Record rb;
      rb.set_field("b", make_value(i));
      net.input().inject(std::move(rb));
    }
    outs += net.output().collect().size();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  benchmark::DoNotOptimize(outs);
}
BENCHMARK(BM_SyncCellJoin)->Unit(benchmark::kMillisecond);

void BM_BestMatchScoringCost(benchmark::State& state) {
  // Routing across branches with increasingly specific input types.
  auto narrow = box("narrow", "(x) -> (x)",
                    [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  auto wide = box("wide", "(x, <a>, <b>, <c>) -> (x)",
                  [](const BoxInput& in, BoxOutput& out) { out.out(1, in.field("x")); });
  const Net n = parallel(narrow, wide);
  run_records(state, n, kBatch, [](int i) {
    return payload(i, {{"a", 1}, {"b", 2}, {"c", 3}});
  });
}
BENCHMARK(BM_BestMatchScoringCost)->Unit(benchmark::kMillisecond);

void BM_FlowInheritanceOverhead(benchmark::State& state) {
  // Identity box with increasing numbers of excess labels to re-attach.
  const std::int64_t extras = state.range(0);
  run_records(state, ident("id"), kBatch, [extras](int i) {
    Record r = payload(i);
    for (std::int64_t t = 0; t < extras; ++t) {
      std::string tname = "t";
      tname += std::to_string(t);
      r.set_tag(tag_label(tname), t);
    }
    return r;
  });
  state.counters["excess_labels"] = static_cast<double>(extras);
}
BENCHMARK(BM_FlowInheritanceOverhead)->Arg(0)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
