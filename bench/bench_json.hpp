#ifndef SNETSAC_BENCH_BENCH_JSON_HPP
#define SNETSAC_BENCH_BENCH_JSON_HPP

/// \file bench_json.hpp
/// Minimal machine-readable bench output: an array of flat objects with
/// string or numeric values, written to `BENCH_<name>.json` in the current
/// directory so successive PRs can diff perf trajectories without parsing
/// human-oriented bench logs.
///
/// Also the bench half of the snapshot/replay harness (tools/snetrec,
/// snet/wire.hpp): `snapshot_inputs` lets a gated bench run from a
/// committed, hardware-independent `.swire` input stream instead of
/// rebuilding its inputs in code, and `snapshot_record` captures the
/// inputs a bench actually used so the stream can be committed as a
/// fixture. Both are opt-in via environment variables and cost nothing
/// when unset.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "snet/wire.hpp"

namespace benchjson {

/// Records loaded from `$SNETSAC_SNAPSHOT_DIR/<name>.swire` when the
/// variable is set and the file exists; nullopt otherwise (the bench then
/// builds its inputs in code as usual). Throws wire::WireError on a
/// malformed stream — a broken fixture should fail loudly, not silently
/// change what the bench measures.
inline std::optional<std::vector<snet::Record>> snapshot_inputs(
    const std::string& name) {
  const char* dir = std::getenv("SNETSAC_SNAPSHOT_DIR");
  if (dir == nullptr || *dir == '\0') {
    return std::nullopt;
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / (name + ".swire");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  return snet::wire::read_all(in);
}

/// When `$SNETSAC_RECORD_DIR` is set, serializes \p records to
/// `$SNETSAC_RECORD_DIR/<name>.swire` (directories created as needed).
inline void snapshot_record(const std::string& name,
                            const std::vector<snet::Record>& records) {
  const char* dir = std::getenv("SNETSAC_RECORD_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  std::filesystem::create_directories(dir);
  const std::filesystem::path path =
      std::filesystem::path(dir) / (name + ".swire");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  snet::wire::WireWriter w(out);
  for (const auto& r : records) {
    w.record(r);
  }
  w.finish();
}

using Value = std::variant<std::string, double, std::int64_t>;

struct Row {
  std::vector<std::pair<std::string, Value>> fields;

  Row& set(std::string key, Value v) {
    fields.emplace_back(std::move(key), std::move(v));
    return *this;
  }
};

inline std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

inline void write(const std::string& name, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "  {";
    const auto& fields = rows[r].fields;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      os << '"' << escape(fields[i].first) << "\": ";
      const Value& v = fields[i].second;
      if (const auto* s = std::get_if<std::string>(&v)) {
        os << '"' << escape(*s) << '"';
      } else if (const auto* d = std::get_if<double>(&v)) {
        os << *d;
      } else {
        os << std::get<std::int64_t>(v);
      }
      if (i + 1 < fields.size()) {
        os << ", ";
      }
    }
    os << (r + 1 < rows.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  std::ofstream file("BENCH_" + name + ".json");
  file << os.str();
}

}  // namespace benchjson

#endif
