#ifndef SNETSAC_BENCH_BENCH_JSON_HPP
#define SNETSAC_BENCH_BENCH_JSON_HPP

/// \file bench_json.hpp
/// Minimal machine-readable bench output: an array of flat objects with
/// string or numeric values, written to `BENCH_<name>.json` in the current
/// directory so successive PRs can diff perf trajectories without parsing
/// human-oriented bench logs.

#include <fstream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace benchjson {

using Value = std::variant<std::string, double, std::int64_t>;

struct Row {
  std::vector<std::pair<std::string, Value>> fields;

  Row& set(std::string key, Value v) {
    fields.emplace_back(std::move(key), std::move(v));
    return *this;
  }
};

inline std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

inline void write(const std::string& name, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "  {";
    const auto& fields = rows[r].fields;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      os << '"' << escape(fields[i].first) << "\": ";
      const Value& v = fields[i].second;
      if (const auto* s = std::get_if<std::string>(&v)) {
        os << '"' << escape(*s) << '"';
      } else if (const auto* d = std::get_if<double>(&v)) {
        os << *d;
      } else {
        os << std::get<std::int64_t>(v);
      }
      if (i + 1 < fields.size()) {
        os << ", ";
      }
    }
    os << (r + 1 < rows.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  std::ofstream file("BENCH_" + name + ".json");
  file << os.str();
}

}  // namespace benchjson

#endif
