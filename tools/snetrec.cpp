/// \file snetrec.cpp
/// Snapshot/replay harness over the record wire format (snet/wire.hpp,
/// spec in docs/WIRE_FORMAT.md). Three jobs:
///
///   record  — build the input stream a program run would inject, write it
///             to disk, run the program, and write the output stream too:
///             one command produces a complete fixture (inputs + expected
///             outputs) for hardware-independent replay.
///   replay  — load a recorded input stream, run the program on it, and
///             byte-compare the serialized outputs against the expected
///             stream. CI's proof that a run reproduces exactly.
///   dump    — human-readable listing of any .swire stream (including a
///             post-mortem look at a network's spill file).
///
/// Output streams are written in *canonical order*: records sorted by
/// their standalone encoding (wire::encode_standalone), which is
/// process-interning-independent. Worker scheduling may deliver outputs
/// in any order; the canonical sort makes the serialized stream — and so
/// the byte comparison — deterministic.
///
/// Exit codes: 0 success/match, 1 usage or I/O error, 2 replay mismatch,
/// 3 malformed stream (wire decode error).
///
/// Boxes bound for <program.snet> (same library as run_network):
///   computeOpts, solveOneLevelFig1, solveOneLevelK, solveOneLevelKL,
///   solve, propagate

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "snet/detscope.hpp"
#include "snet/lang.hpp"
#include "snet/wire.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

namespace {

constexpr const char* kUsage = R"(snetrec - record, replay and inspect S-Net record streams (.swire)

usage:
  snetrec record <program.snet> <puzzle-name> <inputs.swire> <outputs.swire>
      Build the program's input stream for the named corpus puzzle, write
      it to <inputs.swire>, run the program, and write the canonically
      ordered outputs to <outputs.swire>.

  snetrec replay <program.snet> <inputs.swire> <expected-outputs.swire>
      Run the program on the recorded inputs and byte-compare the
      serialized outputs with the expected stream.

  snetrec dump <stream.swire>
      List header, shapes, groups and records of a stream.

  snetrec --help
      This text.

exit codes: 0 success/match, 1 usage or I/O error, 2 replay mismatch,
            3 malformed stream
)";

void bind_both(snet::lang::Bindings& b, const std::string& name,
               const snet::Net& box_net) {
  b.bind_net(name, box_net);
  b.bind_box(name, box_net->fn);
}

snet::Net load_program(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream src;
  src << in.rdbuf();
  snet::lang::Bindings bindings;
  bind_both(bindings, "computeOpts", sudoku::compute_opts_box());
  bind_both(bindings, "solveOneLevelFig1", sudoku::solve_one_level_box());
  bind_both(bindings, "solveOneLevelK", sudoku::solve_one_level_k_box());
  bind_both(bindings, "solveOneLevelKL", sudoku::solve_one_level_kl_box());
  bind_both(bindings, "solve", sudoku::solve_box());
  bind_both(bindings, "propagate", sudoku::propagate_box());
  return snet::lang::parse_network_named(src.str(), bindings).topology;
}

std::vector<snet::Record> load_stream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return snet::wire::read_all(in);
}

/// Serializes \p records in canonical (standalone-encoding) order.
std::string encode_canonical(std::vector<snet::Record> records) {
  std::vector<std::pair<std::string, const snet::Record*>> keyed;
  keyed.reserve(records.size());
  for (const auto& r : records) {
    keyed.emplace_back(snet::wire::encode_standalone(r), &r);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os(std::ios::binary);
  snet::wire::WireWriter w(os);
  for (const auto& [key, rec] : keyed) {
    w.record(*rec);
  }
  w.finish();
  return std::move(os).str();
}

/// Runs \p program on \p inputs and returns the canonically serialized
/// output stream.
std::string run_and_encode(const snet::Net& program,
                           const std::vector<snet::Record>& inputs) {
  snet::Network net(program);
  for (const auto& r : inputs) {
    net.input().inject(r);
  }
  return encode_canonical(net.output().collect());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
}

int cmd_record(const std::string& program_path, const std::string& puzzle,
               const std::string& inputs_path, const std::string& outputs_path) {
  const snet::Net program = load_program(program_path);
  const std::vector<snet::Record> inputs = {
      sudoku::board_record(sudoku::corpus_board(puzzle))};

  std::ostringstream is(std::ios::binary);
  snet::wire::WireWriter iw(is);
  for (const auto& r : inputs) {
    iw.record(r);
  }
  iw.finish();
  write_file(inputs_path, std::move(is).str());

  write_file(outputs_path, run_and_encode(program, inputs));
  std::cout << "recorded " << inputs.size() << " input record(s) to "
            << inputs_path << ", outputs to " << outputs_path << "\n";
  return 0;
}

int cmd_replay(const std::string& program_path, const std::string& inputs_path,
               const std::string& expected_path) {
  const snet::Net program = load_program(program_path);
  const std::vector<snet::Record> inputs = load_stream(inputs_path);

  std::ifstream exp(expected_path, std::ios::binary);
  if (!exp) {
    throw std::runtime_error("cannot open " + expected_path);
  }
  std::ostringstream eb(std::ios::binary);
  eb << exp.rdbuf();
  const std::string expected = std::move(eb).str();

  const std::string actual = run_and_encode(program, inputs);
  if (actual == expected) {
    std::cout << "replay ok: " << actual.size() << " bytes match "
              << expected_path << "\n";
    return 0;
  }
  std::size_t at = 0;
  while (at < actual.size() && at < expected.size() &&
         actual[at] == expected[at]) {
    ++at;
  }
  std::cerr << "replay MISMATCH: produced " << actual.size()
            << " bytes, expected " << expected.size()
            << "; first difference at byte " << at << "\n";
  return 2;
}

int cmd_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  // Det stamps in the stream (e.g. a network's spill file) resolve to
  // placeholder scopes: dump only displays, it never runs the records.
  snet::wire::Resolvers resolvers;
  resolvers.scope = [](std::uint32_t, const std::string& name) {
    static std::map<std::string, snet::DetScope*>* scopes =
        new std::map<std::string, snet::DetScope*>();
    auto [it, fresh] = scopes->try_emplace(name, nullptr);
    if (fresh) {
      it->second = new snet::DetScope(name);  // leaked; dump is one-shot
    }
    return it->second;
  };
  snet::wire::WireReader reader(in, std::move(resolvers));
  std::uint64_t n = 0;
  while (auto r = reader.next()) {
    std::cout << "record " << n++ << ": " << r->to_string();
    if (!r->det_stack().empty()) {
      std::cout << "  [det depth " << r->det_stack().size() << "]";
    }
    std::cout << "\n";
  }
  for (const auto& g : reader.groups()) {
    std::cout << "group key=" << g.key << " offset=" << g.offset
              << " records=" << g.count << "\n";
  }
  std::cout << n << " record(s), " << reader.groups().size()
            << " group frame(s), "
            << (reader.at_clean_end() ? "clean end" : "NO end marker — "
                                                      "truncated or still "
                                                      "being written")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::cout << kUsage;
    return args.empty() ? 1 : 0;
  }
  try {
    if (args[0] == "record" && args.size() == 5) {
      return cmd_record(args[1], args[2], args[3], args[4]);
    }
    if (args[0] == "replay" && args.size() == 4) {
      return cmd_replay(args[1], args[2], args[3]);
    }
    if (args[0] == "dump" && args.size() == 2) {
      return cmd_dump(args[1]);
    }
    std::cerr << kUsage;
    return 1;
  } catch (const snet::wire::WireError& e) {
    std::cerr << "snetrec: malformed stream: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "snetrec: " << e.what() << "\n";
    return 1;
  }
}
