#!/usr/bin/env python3
"""Diff current BENCH_*.json files against a committed baseline.

Closes the ROADMAP gap "CI runs the benches and uploads the JSON, but
nothing yet *diffs* them across PRs": every bench emits a flat JSON array
of rows (see bench/bench_json.hpp); this script matches rows between the
baseline directory (committed, bench/baselines/) and the current
directory (the fresh build/ output) and fails on a >20% regression.

Hardware-comparability rule: committed baselines come from whatever
machine produced them, CI runs on different hardware, so *absolute*
throughput numbers (records_per_sec) are not comparable across the two
and are only checked with --absolute (for local A/B runs on one
machine). *Ratio* metrics — a speedup over a legacy path measured in the
same process, a bounded/unbounded comparison — are hardware-independent
and are enforced by default.

Usage:
  tools/bench_diff.py --baseline bench/baselines --current build
  tools/bench_diff.py --baseline old_build --current build --absolute
"""

import argparse
import json
import pathlib
import sys

# Metrics enforced by default: dimensionless ratios measured within one
# process, stable across machines.
# peak_ratio_unbounded_vs_bounded is deliberately absent: the bounded
# peak depends on scheduling interleave (hundreds vs tens), so the ratio
# swings too much for a 20% gate — bench_backpressure enforces its own
# hard >=10x bar in-process instead.
RATIO_METRICS = {
    "speedup_vs_legacy",
    "throughput_bounded_vs_unbounded",
    # bench_fairness: fast sessions' aggregate throughput with one stalled
    # slow peer vs. without it (per-session output credit isolation).
    "fairness_fast_vs_solo",
    # bench_routing: end-to-end records/sec with the batched-quantum
    # pipeline on vs. the scalar ablation, same binary and topology.
    "e2e_batch_speedup",
    # bench_withloop: compiled segment engine vs. the interpreted
    # per-element reference on identical With objects (Context::compiled).
    "withloop_compiled_speedup",
}
# Metrics enforced only with --absolute: machine-dependent throughput.
ABSOLUTE_METRICS = {"records_per_sec", "elements_per_sec"}
# Keys that identify a row (everything string-valued plus these ints).
IDENTITY_KEYS = ("bench", "mode", "branches", "threads", "bound")

DEFAULT_TOLERANCE = 0.20


def row_identity(row):
    ident = []
    for key in IDENTITY_KEYS:
        if key in row:
            ident.append((key, row[key]))
    return tuple(ident)


class SchemaError(Exception):
    """A BENCH_*.json file that does not match the bench_json.hpp shape."""


def validate_rows(path, data):
    """Checks the bench_json.hpp schema before any metric is touched.

    A malformed file (hand-edited baseline, truncated CI artifact, a bench
    emitting a new shape) should fail with a message naming the file, the
    row, and the violated rule — not with a KeyError/TypeError traceback
    halfway through the diff.
    """
    if not isinstance(data, list):
        raise SchemaError(
            f"{path}: top level must be a JSON array of rows, "
            f"got {type(data).__name__}")
    known_metrics = RATIO_METRICS | ABSOLUTE_METRICS
    any_metric = False
    for i, row in enumerate(data):
        if not isinstance(row, dict):
            raise SchemaError(
                f"{path}: row {i} must be an object, "
                f"got {type(row).__name__}")
        if "bench" not in row:
            raise SchemaError(
                f"{path}: row {i} lacks the 'bench' identity key "
                f"(has: {sorted(row)})")
        any_metric = any_metric or any(m in row for m in known_metrics)
        for metric in known_metrics:
            if metric not in row:
                continue
            value = row[metric]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(
                    f"{path}: row {i} metric '{metric}' must be a number, "
                    f"got {value!r}")
    # Per-file, not per-row: ablation/reference rows legitimately carry
    # only identity keys plus throughput the ratio rows divide by.
    if data and not any_metric:
        raise SchemaError(
            f"{path}: no row carries any known metric key "
            f"{sorted(known_metrics)} — nothing to diff; if the bench emits "
            f"a new metric, add it to RATIO_METRICS or ABSOLUTE_METRICS")


def load_rows(path):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            raise SchemaError(f"{path}: not valid JSON: {e}") from e
    validate_rows(path, data)
    return {row_identity(r): r for r in data}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory holding committed BENCH_*.json baselines")
    ap.add_argument("--current", required=True,
                    help="directory holding freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--absolute", action="store_true",
                    help="also enforce machine-dependent metrics "
                         "(records_per_sec) — same-machine A/B runs only")
    args = ap.parse_args()

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    metrics = set(RATIO_METRICS)
    if args.absolute:
        metrics |= ABSOLUTE_METRICS

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_diff: no baselines under {baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for base_path in baselines:
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            # A bench that no longer runs is a regression of its own.
            failures.append(f"{base_path.name}: missing from {current_dir}")
            continue
        try:
            base_rows = load_rows(base_path)
            cur_rows = load_rows(cur_path)
        except SchemaError as e:
            print(f"bench_diff: schema error: {e}", file=sys.stderr)
            return 2
        for ident, base_row in base_rows.items():
            cur_row = cur_rows.get(ident)
            if cur_row is None:
                failures.append(
                    f"{base_path.name}: row {dict(ident)} missing from current run")
                continue
            for metric in sorted(metrics):
                if metric not in base_row:
                    continue
                base_v = float(base_row[metric])
                if base_v <= 0:
                    continue
                if metric not in cur_row:
                    failures.append(
                        f"{base_path.name}: {dict(ident)} lost metric {metric}")
                    continue
                cur_v = float(cur_row[metric])
                change = (cur_v - base_v) / base_v
                compared += 1
                marker = "OK "
                if change < -args.tolerance:
                    marker = "REG"
                    failures.append(
                        f"{base_path.name}: {dict(ident)} {metric} "
                        f"{base_v:.4g} -> {cur_v:.4g} ({change:+.1%})")
                print(f"  [{marker}] {base_path.name} {dict(ident)} "
                      f"{metric}: {base_v:.4g} -> {cur_v:.4g} ({change:+.1%})")

    if compared == 0:
        print("bench_diff: no comparable metrics found — check baselines",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_diff: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_diff: {compared} metric(s) within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
