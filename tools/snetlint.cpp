/// \file snetlint.cpp
/// Standalone front-end for the whole-topology shape-flow verifier
/// (snet/verify.hpp): lint a textual S-Net program without running it.
///
/// Usage: snetlint [--strict] [--dot FILE] [--expect CODES] program.snet
///
///   --strict        warnings fail the lint (exit 1), not just errors
///   --dot FILE      write the topology as Graphviz DOT with the verifier's
///                   findings painted on (errors red, warnings orange)
///   --expect CODES  negative-fixture mode: CODES is a comma-separated
///                   list of diagnostic codes (e.g.
///                   "dead-branch,never-firing-sync"); exit 0 iff the
///                   report contains a diagnostic with *every* listed
///                   code, exit 2 otherwise — how CI asserts that an
///                   intentionally-broken example stays broken in exactly
///                   the intended ways
///
/// Box *declarations* in the program are bound to no-op stubs: the lint
/// needs only the declared signatures (coordination is data; computation
/// is irrelevant to shape flow). Exit codes: 0 clean (or expected
/// diagnostic found), 1 diagnostics reported, 2 --expect not satisfied,
/// 3 usage/parse/IO error.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "snet/dot.hpp"
#include "snet/lang.hpp"
#include "snet/verify.hpp"

namespace {

/// Scans the program text for `box IDENT (`-shaped declarations and binds
/// each name to a stub implementation. A crude token walk is enough: the
/// keyword `box` in declaration position is always followed by an
/// identifier and the signature's opening parenthesis (a *label* named
/// "box" inside a pattern is followed by ',' or '}' instead).
void bind_declared_boxes(const std::string& source, snet::lang::Bindings& bindings) {
  std::vector<std::string> tokens;
  for (std::size_t i = 0; i < source.size();) {
    const char c = source[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) ||
              source[j] == '_')) {
        ++j;
      }
      tokens.push_back(source.substr(i, j - i));
      i = j;
    } else if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
    } else {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        tokens.push_back(std::string(1, c));
      }
      ++i;
    }
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i] == "box" && tokens[i + 2] == "(") {
      bindings.bind_box(tokens[i + 1],
                        [](const snet::BoxInput&, snet::BoxOutput&) {});
    }
  }
}

/// Splits the --expect operand on commas; empty segments (a stray
/// trailing comma) are dropped rather than becoming never-matchable codes.
std::vector<std::string> split_codes(const std::string& list) {
  std::vector<std::string> codes;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) {
        codes.push_back(cur);
      }
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    codes.push_back(cur);
  }
  return codes;
}

int usage() {
  std::fprintf(stderr,
               "usage: snetlint [--strict] [--dot FILE] [--expect CODES] "
               "program.snet\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::string dot_path;
  std::string expect;
  std::string program;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      expect = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (program.empty()) {
      program = arg;
    } else {
      return usage();
    }
  }
  if (program.empty()) {
    return usage();
  }

  try {
    std::ifstream in(program);
    if (!in) {
      std::fprintf(stderr, "snetlint: cannot open %s\n", program.c_str());
      return 3;
    }
    std::ostringstream src;
    src << in.rdbuf();

    snet::lang::Bindings bindings;
    bind_declared_boxes(src.str(), bindings);
    const snet::Net topology = snet::lang::parse_network(src.str(), bindings);

    const snet::VerifyReport report = snet::verify(topology);

    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      if (!dot) {
        std::fprintf(stderr, "snetlint: cannot write %s\n", dot_path.c_str());
        return 3;
      }
      dot << snet::to_dot(topology, report);
    }

    std::printf("network: %s\n", snet::describe(topology).c_str());
    if (report.empty()) {
      std::printf("clean: no diagnostics\n");
    } else {
      std::fputs(report.to_string().c_str(), stdout);
    }

    if (!expect.empty()) {
      const std::vector<std::string> codes = split_codes(expect);
      if (codes.empty()) {
        return usage();
      }
      bool all_present = true;
      for (const auto& code : codes) {
        bool present = false;
        for (const auto& d : report.diagnostics) {
          if (code == snet::to_string(d.code)) {
            present = true;
            break;
          }
        }
        if (present) {
          std::printf("expected diagnostic [%s] present\n", code.c_str());
        } else {
          std::fprintf(stderr,
                       "snetlint: expected diagnostic [%s] NOT present\n",
                       code.c_str());
          all_present = false;
        }
      }
      return all_present ? 0 : 2;
    }
    if (report.has_errors()) {
      return 1;
    }
    return !report.empty() && strict ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snetlint: %s\n", e.what());
    return 3;
  }
}
