/// schedcheck — deterministic schedule exploration over the protocol
/// scenarios in snet/simcheck.hpp.
///
/// Sweeps seeds (PCT or uniform-random strategies) and/or walks the
/// schedule tree exhaustively (bounded DFS via replay prefixes). Every
/// run executes all entity quanta serialised on this thread in an order
/// chosen from the seed alone, with the network's conservation laws
/// re-checked at every yield point; a violation prints the scenario,
/// seed, strategy and full decision trace, and the same seed replays the
/// identical schedule forever:
///
///   schedcheck                             # full sweep, 1000 seeds each
///   schedcheck --scenario drr-flood --seeds 5000
///   schedcheck --scenario drr-flood --seed 4217   # reproduce one report
///   schedcheck --dfs --max-runs 400        # exhaustive prefix walk
///
/// Exit status: 0 clean, 1 violation found, 2 usage error.

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/invariants.hpp"
#include "runtime/sim_executor.hpp"
#include "snet/simcheck.hpp"

namespace {

using snetsac::runtime::ProtocolInvariantError;
using snetsac::runtime::SimExecutor;

struct Args {
  std::vector<std::string> scenarios;  // empty = all
  SimExecutor::Strategy strategy = SimExecutor::Strategy::kPct;
  const char* strategy_name = "pct";
  std::uint64_t seeds = 1000;  // sweep size
  std::uint64_t seed = 0;      // nonzero = single-seed reproduction
  bool dfs = false;
  std::uint64_t max_runs = 200;  // DFS budget per scenario
  bool list = false;
};

int usage(int code) {
  std::cerr
      << "usage: schedcheck [--scenario NAME]... [--strategy pct|random]\n"
         "                  [--seeds N] [--seed S] [--dfs] [--max-runs M]\n"
         "                  [--list]\n";
  return code;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

/// One scenario run; on violation prints the report and returns false.
bool run_one(const std::string& scenario, const SimExecutor::Options& opts,
             const char* mode, snet::simcheck::RunResult* result = nullptr) {
  try {
    auto r = snet::simcheck::run_scenario(scenario, opts);
    if (result != nullptr) {
      *result = std::move(r);
    }
    return true;
  } catch (const ProtocolInvariantError& e) {
    std::cout << "FAIL scenario=" << scenario << " strategy=" << mode
              << " seed=" << opts.seed << "\n"
              << e.what() << "\n"
              << "reproduce with: schedcheck --scenario " << scenario
              << " --strategy " << mode << " --seed " << opts.seed << "\n";
    return false;
  }
}

/// Sweeps seeds [1, n] (or exactly `fixed` when nonzero) over a scenario.
bool sweep(const std::string& scenario, const Args& args) {
  SimExecutor::Options opts;
  opts.strategy = args.strategy;
  if (args.seed != 0) {
    opts.seed = args.seed;
    return run_one(scenario, opts, args.strategy_name);
  }
  for (std::uint64_t s = 1; s <= args.seeds; ++s) {
    opts.seed = s;
    if (!run_one(scenario, opts, args.strategy_name)) {
      return false;
    }
  }
  return true;
}

/// Bounded exhaustive walk of the schedule tree: run a replay prefix, then
/// enqueue every unexplored sibling choice at or past the prefix frontier.
/// Choices beyond the prefix always pick index 0, so a prefix fully
/// determines its run; the budget caps the walk on dense trees.
bool dfs_walk(const std::string& scenario, const Args& args) {
  std::deque<std::vector<std::uint32_t>> frontier;
  frontier.push_back({});
  std::uint64_t runs = 0;
  bool truncated = false;
  while (!frontier.empty()) {
    if (runs >= args.max_runs) {
      truncated = true;
      break;
    }
    const std::vector<std::uint32_t> prefix = std::move(frontier.back());
    frontier.pop_back();
    SimExecutor::Options opts;
    opts.strategy = SimExecutor::Strategy::kReplay;
    opts.replay = prefix;
    snet::simcheck::RunResult result;
    ++runs;
    if (!run_one(scenario, opts, "replay", &result)) {
      std::cout << "replay prefix:";
      for (const std::uint32_t c : prefix) {
        std::cout << ' ' << c;
      }
      std::cout << "\n";
      return false;
    }
    // Deepest-first sibling expansion, only past the locked prefix (all
    // shallower alternatives were enqueued by the run that produced them).
    for (std::size_t i = prefix.size(); i < result.choices.size(); ++i) {
      for (std::uint32_t alt = result.choices[i] + 1;
           alt < result.option_counts[i]; ++alt) {
        std::vector<std::uint32_t> next(result.choices.begin(),
                                        result.choices.begin() +
                                            static_cast<std::ptrdiff_t>(i));
        next.push_back(alt);
        frontier.push_back(std::move(next));
      }
    }
  }
  std::cout << "  dfs " << scenario << ": " << runs << " schedules clean"
            << (truncated ? " (budget reached, tree not exhausted)" : "")
            << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_arg = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--scenario" && next_arg(v)) {
      args.scenarios.push_back(v);
    } else if (a == "--strategy" && next_arg(v)) {
      if (v == "pct") {
        args.strategy = SimExecutor::Strategy::kPct;
      } else if (v == "random") {
        args.strategy = SimExecutor::Strategy::kRandom;
      } else {
        return usage(2);
      }
      args.strategy_name = v == "pct" ? "pct" : "random";
    } else if (a == "--seeds" && next_arg(v)) {
      if (!parse_u64(v, args.seeds) || args.seeds == 0) {
        return usage(2);
      }
    } else if (a == "--seed" && next_arg(v)) {
      if (!parse_u64(v, args.seed) || args.seed == 0) {
        return usage(2);
      }
    } else if (a == "--max-runs" && next_arg(v)) {
      if (!parse_u64(v, args.max_runs) || args.max_runs == 0) {
        return usage(2);
      }
    } else if (a == "--dfs") {
      args.dfs = true;
    } else if (a == "--list") {
      args.list = true;
    } else {
      return usage(a == "--help" || a == "-h" ? 0 : 2);
    }
  }

  const auto& all = snet::simcheck::scenario_names();
  if (args.list) {
    for (const auto& name : all) {
      std::cout << name << "\n";
    }
    return 0;
  }
  std::vector<std::string> scenarios =
      args.scenarios.empty() ? all : args.scenarios;
  for (const auto& name : scenarios) {
    bool known = false;
    for (const auto& have : all) {
      known = known || have == name;
    }
    if (!known) {
      std::cerr << "schedcheck: unknown scenario '" << name << "'\n";
      return usage(2);
    }
  }

  for (const auto& name : scenarios) {
    if (args.dfs) {
      if (!dfs_walk(name, args)) {
        return 1;
      }
    } else {
      if (!sweep(name, args)) {
        return 1;
      }
      std::cout << "  " << name << ": "
                << (args.seed != 0 ? 1 : args.seeds) << " seed(s) clean ("
                << args.strategy_name << ")\n";
    }
  }
  std::cout << "schedcheck: all scenarios clean\n";
  return 0;
}
