/// \file collatz_search.cpp
/// A second irregular-search workload in the style of the paper's sudoku
/// study: Collatz trajectory lengths.
///
/// Each number is a record {<n0>, <n>, <steps>}; a stateless box performs
/// one Collatz step; the serial replicator iterates it until the guarded
/// exit `{<n>} if <n> == 1` fires — dynamic unfolding depth equals the
/// longest trajectory, which is exactly the "imbalanced tree" property
/// that motivates coordination-level concurrency in the paper. A parallel
/// replicator over `<n> % 4` throttles the number of concurrent chains,
/// mirroring Fig. 3's `%4` filter.

#include <iostream>

#include "snet/network.hpp"

namespace {

snet::Net collatz_network() {
  using namespace snet;
  auto step = box("collatzStep", "(<n0>, <n>, <steps>) -> (<n0>, <n>, <steps>)",
                  [](const BoxInput& in, BoxOutput& out) {
                    const std::int64_t n = in.tag("n");
                    const std::int64_t next = n % 2 == 0 ? n / 2 : 3 * n + 1;
                    out.out(1, in.tag("n0"), next, in.tag("steps") + 1);
                  });
  const Pattern done(RecordType::of({}, {"n"}),
                     TagExpr::tag("n") == TagExpr::lit(1));
  // Throttle: route chains onto 4 lanes by n0 % 4. The pattern declares
  // everything downstream needs so the static checker can see the full
  // record type (S-Net style: filters restate their record shape).
  auto lane =
      filter("{<n0>, <n>, <steps>} -> {<n0>, <n>, <steps>, <lane>=<n0>%4}");
  return lane >> star(split(step, "lane"), done);
}

}  // namespace

int main() {
  constexpr int kFrom = 2;
  constexpr int kTo = 60;
  snet::Network net(collatz_network());
  for (int n = kFrom; n <= kTo; ++n) {
    snet::Record r;
    r.set_tag("n0", n);
    r.set_tag("n", n);
    r.set_tag("steps", 0);
    net.input().inject(std::move(r));
  }
  const auto results = net.output().collect();

  std::int64_t longest_n = 0;
  std::int64_t longest = -1;
  for (const auto& r : results) {
    if (r.tag("steps") > longest) {
      longest = r.tag("steps");
      longest_n = r.tag("n0");
    }
  }
  std::cout << "collatz trajectories for " << kFrom << ".." << kTo << ": "
            << results.size() << " records\n";
  std::cout << "longest: n0=" << longest_n << " with " << longest << " steps\n";
  const auto stats = net.stats();
  std::cout << "pipeline stages materialised: " << stats.count_containing("/stage")
            << " (= longest trajectory + 1, demand-driven)\n";
  std::cout << "step-box replicas: " << stats.count_containing("box:collatzStep")
            << " (<= 4 lanes x stages)\n";
  // 27 has the famously long 111-step trajectory; 54 = 2*27 tops it at 112.
  return (longest_n == 54 && longest == 112) ? 0 : 1;
}
