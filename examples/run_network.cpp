/// \file run_network.cpp
/// Runs a textual S-Net program from disk against a sudoku puzzle — the
/// paper's deployment story end to end: coordination is *data* (a network
/// description), computation is a library of bound boxes.
///
/// Usage: run_network <program.snet> [puzzle-name]
/// Programs may declare (and the host binds) these boxes:
///   computeOpts, solveOneLevelFig1, solveOneLevelK, solveOneLevelKL,
///   solve, propagate
///
/// Try: run_network examples/networks/fig2.snet hard

#include <fstream>
#include <iostream>
#include <sstream>

#include "snet/lang.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

namespace {

/// Registers a prebuilt box Net under \p name for both usage styles: as a
/// bare operand and as a `box name (...)` declaration (the declaration
/// re-checks the signature but reuses the bound function).
void bind_both(snet::lang::Bindings& b, const std::string& name,
               const snet::Net& box_net) {
  b.bind_net(name, box_net);
  b.bind_box(name, box_net->fn);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: run_network <program.snet> [puzzle-name]\n";
    return 1;
  }
  const std::string path = argv[1];
  const std::string puzzle_name = argc > 2 ? argv[2] : "easy";
  try {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("cannot open " + path);
    }
    std::ostringstream src;
    src << in.rdbuf();

    snet::lang::Bindings bindings;
    bind_both(bindings, "computeOpts", sudoku::compute_opts_box());
    bind_both(bindings, "solveOneLevelFig1", sudoku::solve_one_level_box());
    bind_both(bindings, "solveOneLevelK", sudoku::solve_one_level_k_box());
    bind_both(bindings, "solveOneLevelKL", sudoku::solve_one_level_kl_box());
    bind_both(bindings, "solve", sudoku::solve_box());
    bind_both(bindings, "propagate", sudoku::propagate_box());

    const auto parsed = snet::lang::parse_network_named(src.str(), bindings);
    std::cout << "program: " << (parsed.name.empty() ? "<expression>" : parsed.name)
              << "\nnetwork: " << snet::describe(parsed.topology)
              << "\ntype:    " << snet::infer(parsed.topology).to_string() << "\n\n";

    const auto puzzle = sudoku::corpus_board(puzzle_name);
    snet::Network net(parsed.topology);
    net.input().inject(sudoku::board_record(puzzle));
    const auto records = net.output().collect();
    const auto sols = sudoku::solutions_in(records);
    std::cout << "outputs: " << records.size() << " record(s), solutions: "
              << sols.size() << "\n";
    if (!sols.empty()) {
      std::cout << sudoku::board_to_string(sols.front());
      return sudoku::solves(puzzle, sols.front()) ? 0 : 2;
    }
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
