/// \file stencil_pipeline.cpp
/// The paper's opening motivation — "numerical applications on large
/// homogeneous data structures" — combined with its coordination model:
/// a parameter sweep of 2-D heat-diffusion (Jacobi) problems.
///
/// Inner layer (SaC): one Jacobi relaxation step is a single
/// genarray-with-loop over the grid, executed data-parallel.
///
/// Outer layer (S-Net): each sweep instance is a record
/// {grid, <id>, <iter>}; instances are distributed over replicas with
/// `!! <id>` and iterated by a serial replicator whose guarded exit
/// pattern `{<iter>} if <iter> >= steps` releases finished grids — the
/// same throttling idiom as the paper's Fig. 3.

#include <iomanip>
#include <iostream>

#include "sacpp/ops.hpp"
#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"

namespace {

using Grid = sac::Array<double>;

constexpr std::int64_t kSide = 96;
constexpr std::int64_t kSteps = 50;

/// One Jacobi step: interior cells average their 4 neighbours; the
/// boundary (default region of the with-loop) keeps the old values.
Grid jacobi_step(const Grid& g, double alpha) {
  const std::int64_t n = g.shape().extent(0);
  return sac::With<double>()
      .gen({1, 1}, {n - 1, n - 1},
           [&](const sac::Index& iv) {
             const auto i = iv[0];
             const auto j = iv[1];
             const double centre = g[{i, j}];
             const double around = g[{i - 1, j}] + g[{i + 1, j}] +
                                   g[{i, j - 1}] + g[{i, j + 1}];
             return centre + alpha * (around / 4.0 - centre);
           })
      .modarray(g);
}

/// Initial grid: hot edge at the top, cold elsewhere.
Grid initial_grid() {
  Grid g(sac::Shape{kSide, kSide}, 0.0);
  return sac::With<double>()
      .gen_val({0, 0}, {1, kSide}, 100.0)
      .modarray(std::move(g));
}

snet::Net diffusion_network() {
  using namespace snet;
  // step: {grid, <id>, <iter>} -> {grid, <id>, <iter>}; alpha derived from
  // the instance id (the swept parameter).
  auto step = box("jacobiStep", "(grid, <id>, <iter>) -> (grid, <id>, <iter>)",
                  [](const BoxInput& in, BoxOutput& out) {
                    const auto& g = in.get<Grid>("grid");
                    const double alpha = 0.5 + 0.05 * static_cast<double>(in.tag("id"));
                    out.out(1, make_value(jacobi_step(g, alpha)), in.tag("id"),
                            in.tag("iter") + 1);
                  });
  const Pattern exit(RecordType::of({}, {"iter"}),
                     TagExpr::tag("iter") >= TagExpr::lit(kSteps));
  return star(split(step, "id"), exit);
}

}  // namespace

int main() {
  const int instances = 6;
  std::cout << "heat-diffusion sweep: " << instances << " instances, grid "
            << kSide << "x" << kSide << ", " << kSteps << " Jacobi steps each\n";
  std::cout << "network: " << snet::describe(diffusion_network()) << "\n\n";

  snet::Network net(diffusion_network());
  const Grid seed = initial_grid();
  for (int id = 0; id < instances; ++id) {
    snet::Record r;
    r.set_field("grid", snet::make_value(seed));
    r.set_tag("id", id);
    r.set_tag("iter", 0);
    net.input().inject(std::move(r));
  }
  const auto results = net.output().collect();

  std::cout << std::fixed << std::setprecision(3);
  for (const auto& r : results) {
    const auto& g = snet::value_as<Grid>(r.field("grid"));
    // Mean temperature of a row near the hot edge as a summary statistic
    // (heat travels roughly one row per Jacobi step).
    const std::int64_t probe = kSide / 8;
    double mean = 0;
    for (std::int64_t j = 0; j < kSide; ++j) {
      mean += g[{probe, j}];
    }
    std::cout << "instance <id>=" << r.tag("id")
              << "  alpha=" << 0.5 + 0.05 * static_cast<double>(r.tag("id"))
              << "  iterations=" << r.tag("iter") << "  row-" << probe
              << " mean=" << mean / static_cast<double>(kSide) << "\n";
  }
  const auto stats = net.stats();
  std::cout << "\njacobiStep replicas: " << stats.count_containing("box:jacobiStep")
            << " (instances x pipeline stages, as in the paper's Fig. 2 bound)"
            << ", entities: " << stats.entity_count() << "\n";
  return results.size() == static_cast<std::size_t>(instances) ? 0 : 1;
}
