/// \file sudoku_solver.cpp
/// The paper's case study as a command-line tool.
///
/// Usage:
///   sudoku_solver [--mode seq|fig1|fig2|fig3] [--puzzle NAME|--cells STR]
///                 [--workers N] [--throttle M] [--level T] [--stats]
///
/// Modes map to the paper: `seq` is the Section 3 SaC solver; fig1-fig3
/// are the Section 5 networks. The fig3 network is built from its textual
/// S-Net program to demonstrate the language frontend.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "snet/lang.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

namespace {

struct Args {
  std::string mode = "fig2";
  std::string puzzle = "easy";
  std::string cells;
  unsigned workers = 2;
  int throttle = 4;
  int level = 40;
  bool stats = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      a.mode = next();
    } else if (arg == "--puzzle") {
      a.puzzle = next();
    } else if (arg == "--cells") {
      a.cells = next();
    } else if (arg == "--workers") {
      a.workers = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--throttle") {
      a.throttle = std::stoi(next());
    } else if (arg == "--level") {
      a.level = std::stoi(next());
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--help") {
      std::cout << "modes: seq fig1 fig2 fig3; puzzles:";
      for (const auto& e : sudoku::corpus()) {
        std::cout << ' ' << e.name;
      }
      std::cout << "\n";
      std::exit(0);
    } else {
      throw std::runtime_error("unknown argument " + arg);
    }
  }
  return a;
}

snet::Net fig3_from_program(int throttle, int level) {
  // The Fig. 3 network as an S-Net program (language frontend).
  snet::lang::Bindings b;
  b.bind_net("computeOpts", sudoku::compute_opts_box());
  b.bind_net("solveOneLevel", sudoku::solve_one_level_kl_box());
  b.bind_net("solve", sudoku::solve_box());
  const std::string program =
      "computeOpts .. [{} -> {<k>=1}]"
      " .. (([{<k>} -> {<k>=<k>%" + std::to_string(throttle) +
      "}] .. (solveOneLevel !! <k>)) ** {<level>} if <level> > " +
      std::to_string(level) + ") .. solve";
  return snet::lang::parse_network(program, b);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const auto puzzle = args.cells.empty() ? sudoku::corpus_board(args.puzzle)
                                           : sudoku::board_from_string(args.cells);
    std::cout << "puzzle (" << sudoku::level(puzzle) << " givens):\n"
              << sudoku::board_to_string(puzzle) << "\n";

    const auto t0 = std::chrono::steady_clock::now();
    std::optional<sudoku::BoardArray> solution;
    std::optional<snet::NetworkStats> net_stats;

    if (args.mode == "seq") {
      sudoku::SolveStats st;
      const auto res = sudoku::solve_board(puzzle, sudoku::Pick::MinOptions, &st);
      if (res.completed) {
        solution = res.board;
      }
      std::cout << "search nodes: " << st.nodes << ", placements: " << st.placements
                << ", max depth: " << st.max_depth << "\n";
    } else {
      snet::Net topo;
      if (args.mode == "fig1") {
        topo = sudoku::fig1_net();
      } else if (args.mode == "fig2") {
        topo = sudoku::fig2_net();
      } else if (args.mode == "fig3") {
        topo = fig3_from_program(args.throttle, args.level);
      } else {
        throw std::runtime_error("unknown mode " + args.mode);
      }
      std::cout << "network: " << snet::describe(topo) << "\n";
      snet::Options opts;
      opts.workers = args.workers;
      snet::Network net(topo, std::move(opts));
      net.input().inject(sudoku::board_record(puzzle));
      const auto records = net.output().collect();
      const auto sols = sudoku::solutions_in(records);
      if (!sols.empty()) {
        solution = sols.front();
      }
      net_stats = net.stats();
      std::cout << "network outputs: " << records.size()
                << " record(s), solutions: " << sols.size() << "\n";
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    if (solution) {
      std::cout << "\nsolved in " << elapsed << " ms:\n"
                << sudoku::board_to_string(*solution);
      if (!sudoku::solves(puzzle, *solution)) {
        std::cerr << "INTERNAL ERROR: invalid solution\n";
        return 2;
      }
    } else {
      std::cout << "\nno solution found (" << elapsed << " ms)\n";
    }

    if (args.stats && net_stats) {
      std::cout << "\nentities: " << net_stats->entity_count()
                << ", solveOneLevel replicas: "
                << net_stats->count_containing("box:solveOneLevel")
                << ", peak in-flight records: " << net_stats->peak_live << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
