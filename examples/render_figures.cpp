/// \file render_figures.cpp
/// Emits Graphviz renderings of the paper's three networks (static
/// topology, Figs. 1-3) and, for Fig. 2, the dynamic entity graph after
/// solving a puzzle — the demand-driven unfolding made visible.
///
/// Usage: render_figures [fig1|fig2|fig3|fig2run]  (default: all to stdout)

#include <iostream>
#include <string>

#include "snet/dot.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const auto want = [&](const char* name) { return which == "all" || which == name; };

  if (want("fig1")) {
    std::cout << "// Fig. 1: " << snet::describe(sudoku::fig1_net()) << "\n"
              << snet::to_dot(sudoku::fig1_net()) << "\n";
  }
  if (want("fig2")) {
    std::cout << "// Fig. 2: " << snet::describe(sudoku::fig2_net()) << "\n"
              << snet::to_dot(sudoku::fig2_net()) << "\n";
  }
  if (want("fig3")) {
    std::cout << "// Fig. 3: " << snet::describe(sudoku::fig3_net()) << "\n"
              << snet::to_dot(sudoku::fig3_net()) << "\n";
  }
  if (want("fig2run")) {
    snet::Network net(sudoku::fig2_net());
    net.input().inject(sudoku::board_record(sudoku::corpus_board("hard")));
    net.output().collect();
    std::cout << "// Fig. 2 after solving 'hard' — materialised entities\n"
              << snet::to_dot(net.stats()) << "\n";
  }
  return 0;
}
