/// \file quickstart.cpp
/// Quickstart: the two-layer model in one page.
///
///  1. The SaC layer: data-parallel with-loops (paper, Section 2).
///  2. The S-Net layer: boxes, filters and combinators (Section 4),
///     consumed through the port/session client API — bounded InputPort,
///     range-iterable OutputPort, concurrent sessions over one network.
///  3. The hybrid sudoku solver (Sections 3+5): sequential solve and the
///     three coordination networks of Figs. 1-3.

#include <cstdio>
#include <iostream>

#include "sacpp/io.hpp"
#include "sacpp/ops.hpp"
#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

int main() {
  // ---- SaC layer -------------------------------------------------------
  // The paper's first with-loop examples:
  //   with { ([1] <= iv < [4]) : 42 } : genarray([5], 0)  ==  [0,42,42,42,0]
  const auto v1 = sac::With<int>().gen_val({1}, {4}, 42).genarray(sac::Shape{5}, 0);
  std::cout << "genarray([5],0) with 42 on [1,4): " << sac::to_string(v1) << "\n";

  //   with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 } : genarray([6], 0)
  const auto v2 = sac::With<int>()
                      .gen_val({1}, {4}, 1)
                      .gen_val({3}, {5}, 2)
                      .genarray(sac::Shape{6}, 0);
  std::cout << "overlapping generators:            " << sac::to_string(v2) << "\n";

  // ---- S-Net layer -----------------------------------------------------
  // A box doubling a value, composed with a filter renaming the result.
  auto doubler = snet::box("double", "(x) -> (x)",
                           [](const snet::BoxInput& in, snet::BoxOutput& out) {
                             const int x = in.get<int>("x");
                             out.out(1, snet::make_value(2 * x));
                           });
  auto net = doubler >> snet::filter("{x} -> {y=x, <seen>=1}");
  std::cout << "\nnetwork: " << snet::describe(net) << "\n";
  std::cout << "type:    " << snet::infer(net).to_string() << "\n";

  // Clients talk to a running network through ports. With
  // inbox_capacity/output_capacity set the streams are bounded end to
  // end — and *per tenant*: inbox_capacity bounds each session's input
  // staging queue (a fast producer blocks in inject(), or sees
  // try_inject() refuse, instead of ballooning memory), and
  // output_capacity is each session's output credit account — a client
  // that stops reading throttles only its own injects, never its
  // neighbours' streams.
  snet::Options opts;
  opts.inbox_capacity = 64;
  snet::Network running(net, std::move(opts));
  snet::InputPort& in = running.input();
  for (int i = 1; i <= 3; ++i) {
    snet::Record r;
    r.set_field("x", snet::make_value(i));
    in.inject(std::move(r));
  }
  in.close();
  // OutputPort is range-iterable; the loop ends when the stream drains.
  for (snet::Record& rec : running.output()) {
    std::cout << "  out: " << rec.to_string()
              << "  y=" << snet::value_as<int>(rec.field("y")) << "\n";
  }

  // Sessions: independent logical clients over the *same* instantiated
  // network. Each session's records are stamped on entry and demuxed
  // back to its own OutputPort — a multi-tenant server keeps one
  // topology, not one network per request. SessionOptions sets the
  // session's QoS: `weight` is its deficit-round-robin share of entry
  // bandwidth under contention, `output_capacity` overrides the
  // network-default output credit account.
  snet::Session alice = running.open_session();
  snet::SessionOptions premium;
  premium.weight = 4;  // bob gets 4x alice's share when both are backlogged
  snet::Session bob = running.open_session(premium);
  for (int i = 0; i < 2; ++i) {
    snet::Record ra;
    ra.set_field("x", snet::make_value(10 + i));
    alice.input().inject(std::move(ra));
    snet::Record rb;
    rb.set_field("x", snet::make_value(20 + i));
    bob.input().inject(std::move(rb));
  }
  for (const auto& rec : alice.output().collect()) {
    std::cout << "  alice: y=" << snet::value_as<int>(rec.field("y")) << "\n";
  }
  for (const auto& rec : bob.output().collect()) {
    std::cout << "  bob:   y=" << snet::value_as<int>(rec.field("y")) << "\n";
  }

  // ---- Hybrid sudoku solver -------------------------------------------
  const auto puzzle = sudoku::corpus_board("easy");
  std::cout << "\npuzzle 'easy':\n" << sudoku::board_to_string(puzzle);

  // Sequential (paper, Section 3).
  sudoku::SolveStats stats;
  const auto seq = sudoku::solve_board(puzzle, sudoku::Pick::MinOptions, &stats);
  std::cout << "\nsequential solve: completed=" << seq.completed
            << " nodes=" << stats.nodes << "\n";

  // The three coordination networks (paper, Section 5).
  for (const auto& [label, topology] :
       {std::pair{"Fig.1 pipeline ", sudoku::fig1_net()},
        std::pair{"Fig.2 full     ", sudoku::fig2_net()},
        std::pair{"Fig.3 throttled", sudoku::fig3_net()}}) {
    const auto sol = sudoku::solve_with_net(topology, puzzle);
    std::cout << label << ": solved=" << sol.has_value();
    if (sol && *sol == seq.board) {
      std::cout << " (matches sequential solution)";
    }
    std::cout << "\n";
  }
  std::cout << "\nsolution:\n" << sudoku::board_to_string(seq.board);
  return 0;
}
