/// \file quickstart.cpp
/// Quickstart: the two-layer model in one page.
///
///  1. The SaC layer: data-parallel with-loops (paper, Section 2).
///  2. The S-Net layer: boxes, filters and combinators (Section 4).
///  3. The hybrid sudoku solver (Sections 3+5): sequential solve and the
///     three coordination networks of Figs. 1-3.

#include <cstdio>
#include <iostream>

#include "sacpp/io.hpp"
#include "sacpp/ops.hpp"
#include "sacpp/with_loop.hpp"
#include "snet/network.hpp"
#include "sudoku/corpus.hpp"
#include "sudoku/nets.hpp"
#include "sudoku/solver.hpp"

int main() {
  // ---- SaC layer -------------------------------------------------------
  // The paper's first with-loop examples:
  //   with { ([1] <= iv < [4]) : 42 } : genarray([5], 0)  ==  [0,42,42,42,0]
  const auto v1 = sac::With<int>().gen_val({1}, {4}, 42).genarray(sac::Shape{5}, 0);
  std::cout << "genarray([5],0) with 42 on [1,4): " << sac::to_string(v1) << "\n";

  //   with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 } : genarray([6], 0)
  const auto v2 = sac::With<int>()
                      .gen_val({1}, {4}, 1)
                      .gen_val({3}, {5}, 2)
                      .genarray(sac::Shape{6}, 0);
  std::cout << "overlapping generators:            " << sac::to_string(v2) << "\n";

  // ---- S-Net layer -----------------------------------------------------
  // A box doubling a value, composed with a filter renaming the result.
  auto doubler = snet::box("double", "(x) -> (x)",
                           [](const snet::BoxInput& in, snet::BoxOutput& out) {
                             const int x = in.get<int>("x");
                             out.out(1, snet::make_value(2 * x));
                           });
  auto net = doubler >> snet::filter("{x} -> {y=x, <seen>=1}");
  std::cout << "\nnetwork: " << snet::describe(net) << "\n";
  std::cout << "type:    " << snet::infer(net).to_string() << "\n";

  snet::Network running(net);
  for (int i = 1; i <= 3; ++i) {
    snet::Record r;
    r.set_field("x", snet::make_value(i));
    running.inject(std::move(r));
  }
  for (const auto& rec : running.collect()) {
    std::cout << "  out: " << rec.to_string()
              << "  y=" << snet::value_as<int>(rec.field("y")) << "\n";
  }

  // ---- Hybrid sudoku solver -------------------------------------------
  const auto puzzle = sudoku::corpus_board("easy");
  std::cout << "\npuzzle 'easy':\n" << sudoku::board_to_string(puzzle);

  // Sequential (paper, Section 3).
  sudoku::SolveStats stats;
  const auto seq = sudoku::solve_board(puzzle, sudoku::Pick::MinOptions, &stats);
  std::cout << "\nsequential solve: completed=" << seq.completed
            << " nodes=" << stats.nodes << "\n";

  // The three coordination networks (paper, Section 5).
  for (const auto& [label, topology] :
       {std::pair{"Fig.1 pipeline ", sudoku::fig1_net()},
        std::pair{"Fig.2 full     ", sudoku::fig2_net()},
        std::pair{"Fig.3 throttled", sudoku::fig3_net()}}) {
    const auto sol = sudoku::solve_with_net(topology, puzzle);
    std::cout << label << ": solved=" << sol.has_value();
    if (sol && *sol == seq.board) {
      std::cout << " (matches sequential solution)";
    }
    std::cout << "\n";
  }
  std::cout << "\nsolution:\n" << sudoku::board_to_string(seq.board);
  return 0;
}
